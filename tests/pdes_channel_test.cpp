// Unit tests for the channel-clock sync layer (src/pdes/channel_sync):
// ChannelGraph construction/queries, the pdes.sync.* aggregates both
// executors report, topology enforcement in Engine::schedule, and the
// quiescence contract — boundary-only operations (hook-driven migration)
// must abort when attempted from inside a handler, i.e. outside a
// quiescent epoch.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <vector>

#include "pdes/channel_sync.hpp"
#include "pdes/engine.hpp"
#include "util/error.hpp"

namespace massf {
namespace {

constexpr std::int32_t kEvHop = 1;

// Forwards each hop event around a fixed ring at exactly the lookahead.
class HopLp final : public LogicalProcess {
 public:
  HopLp(LpId next, bool misbehave = false)
      : next_(next), misbehave_(misbehave) {}

  void handle(Engine& engine, const Event& ev) override {
    ++events;
    if (misbehave_) {
      // Boundary-only operation from a handler: must die (the engine is
      // mid-window, not at a quiescent epoch).
      engine.migrate_events(engine.current_lp(), next_,
                            [](const Event&) { return true; });
    }
    if (ev.a > 0) {
      engine.schedule(next_, ev.time + engine.options().lookahead, kEvHop,
                      ev.a - 1);
    }
  }

  std::uint64_t events = 0;

 private:
  LpId next_;
  bool misbehave_;
};

TEST(ChannelGraph, EmptyGraphAllowsEverything) {
  ChannelGraph g;
  EXPECT_TRUE(g.empty());
  g.finalize(/*num_lps=*/4);
  EXPECT_TRUE(g.allows(0, 3));
  EXPECT_TRUE(g.allows(2, 1));
  EXPECT_EQ(g.min_lookahead(), kSimTimeMax);
}

TEST(ChannelGraph, DedupesKeepsSmallerLookaheadDropsSelf) {
  ChannelGraph g;
  g.add(0, 1, milliseconds(3));
  g.add(0, 1, milliseconds(1));  // duplicate: smaller lookahead wins
  g.add(1, 2, milliseconds(2));
  g.add(2, 2, milliseconds(5));  // self-channel: dropped
  g.finalize(/*num_lps=*/3);
  ASSERT_EQ(g.size(), 2u);
  EXPECT_EQ(g.channels()[0].lookahead, milliseconds(1));
  EXPECT_EQ(g.min_lookahead(), milliseconds(1));
  EXPECT_TRUE(g.allows(0, 1));
  EXPECT_TRUE(g.allows(1, 2));
  EXPECT_FALSE(g.allows(1, 0));
  EXPECT_FALSE(g.allows(0, 2));
}

TEST(ChannelGraph, InNeighborsAreSortedPerDestination) {
  ChannelGraph g;
  g.add(3, 1, milliseconds(1));
  g.add(0, 1, milliseconds(1));
  g.add(2, 1, milliseconds(1));
  g.add(1, 0, milliseconds(1));
  g.finalize(/*num_lps=*/4);
  EXPECT_EQ(g.in_neighbors(1), (std::vector<LpId>{0, 2, 3}));
  EXPECT_EQ(g.in_neighbors(0), (std::vector<LpId>{1}));
  EXPECT_TRUE(g.in_neighbors(2).empty());
}

TEST(SyncModeName, NamesBothModes) {
  EXPECT_STREQ(sync_mode_name(SyncMode::kBarrier), "barrier");
  EXPECT_STREQ(sync_mode_name(SyncMode::kChannel), "channel");
}

std::unique_ptr<Engine> make_ring_engine(std::int32_t lps, SyncMode sync,
                                         bool declare,
                                         std::uint64_t hops = 64) {
  EngineOptions o;
  o.lookahead = milliseconds(1);
  o.end_time = seconds(3600);
  o.sync = sync;
  auto engine = std::make_unique<Engine>(o);
  for (std::int32_t i = 0; i < lps; ++i) {
    engine->add_lp(std::make_unique<HopLp>((i + 1) % lps));
  }
  if (declare) {
    ChannelGraph g;
    for (std::int32_t i = 0; i < lps; ++i) {
      g.add(i, (i + 1) % lps, o.lookahead);
    }
    engine->set_channels(std::move(g));
  }
  for (std::int32_t i = 0; i < lps; ++i) {
    engine->schedule(i, 0, kEvHop, hops);
  }
  return engine;
}

TEST(ChannelSync, QuiescenceEpochsMatchWindows) {
  auto engine = make_ring_engine(4, SyncMode::kChannel, /*declare=*/true);
  const RunStats stats = engine->run_threaded(2);
  const SyncStats& sync = engine->sync_stats();
  EXPECT_EQ(sync.mode, SyncMode::kChannel);
  EXPECT_EQ(sync.channels, 4u);
  // Every window boundary the channel executor ran was a detected
  // quiescent epoch — the hook/ckpt contract depends on exactly this.
  EXPECT_EQ(sync.quiescence_epochs, stats.num_windows);
}

TEST(ChannelSync, NullEventsAreDeterministicAndExecutorInvariant) {
  // A 3-LP ring where only LP 0 seeds events: the (1->2) and (2->0)
  // channels carry nothing for the first hops — null advances. The tally
  // must not depend on the executor or thread count.
  std::uint64_t reference = 0;
  for (int pass = 0; pass < 2; ++pass) {
    for (const std::int32_t threads : {2, 3}) {
      auto engine = make_ring_engine(3, SyncMode::kChannel, /*declare=*/true);
      engine->run_threaded(threads);
      if (reference == 0) reference = engine->sync_stats().null_events;
      EXPECT_EQ(engine->sync_stats().null_events, reference)
          << "threads=" << threads << " pass=" << pass;
    }
  }
  EXPECT_GT(reference, 0u);
}

TEST(ChannelSync, BarrierModeReportsBarrierIdentity) {
  auto engine = make_ring_engine(4, SyncMode::kBarrier, /*declare=*/true);
  engine->run_threaded(2);
  EXPECT_EQ(engine->sync_stats().mode, SyncMode::kBarrier);
  EXPECT_EQ(engine->sync_stats().quiescence_epochs, 0u);
}

TEST(ChannelSync, SingleThreadShortCircuitMatchesSequential) {
  auto seq = make_ring_engine(4, SyncMode::kChannel, /*declare=*/true);
  auto one = make_ring_engine(4, SyncMode::kChannel, /*declare=*/true);
  const RunStats a = seq->run();
  const RunStats b = one->run_threaded(1);
  EXPECT_EQ(a.total_events, b.total_events);
  EXPECT_EQ(a.num_windows, b.num_windows);
  EXPECT_EQ(a.events_per_lp, b.events_per_lp);
  EXPECT_EQ(a.modeled_wall_s, b.modeled_wall_s);
}

TEST(ChannelSyncError, RejectsChannelLookaheadBelowEngineLookahead) {
  EngineOptions o;
  o.lookahead = milliseconds(2);
  Engine engine(o);
  engine.add_lp(std::make_unique<HopLp>(1));
  engine.add_lp(std::make_unique<HopLp>(0));
  ChannelGraph g;
  g.add(0, 1, milliseconds(1));  // below the engine lookahead
  try {
    engine.set_channels(std::move(g));
    FAIL() << "expected EngineError";
  } catch (const EngineError& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kTopology);
  }
}

TEST(ChannelSyncError, RejectsSendAlongUndeclaredChannel) {
  // Ring channels declared 0->1->2->0; LP 1's next_ is wired *backwards*
  // to 0, so its first forward violates the declared topology.
  EngineOptions o;
  o.lookahead = milliseconds(1);
  Engine engine(o);
  engine.add_lp(std::make_unique<HopLp>(1));
  engine.add_lp(std::make_unique<HopLp>(0));  // undeclared 1->0 send
  engine.add_lp(std::make_unique<HopLp>(0));
  ChannelGraph g;
  g.add(0, 1, o.lookahead);
  g.add(1, 2, o.lookahead);
  g.add(2, 0, o.lookahead);
  engine.set_channels(std::move(g));
  engine.schedule(0, 0, kEvHop, 8);
  try {
    engine.run();
    FAIL() << "expected EngineError";
  } catch (const EngineError& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kTopology);
    EXPECT_NE(std::string(e.what()).find("missing from the declared"),
              std::string::npos);
  }
}

// Hooks (and the boundary-only operations they gate: migration, ckpt
// serialization) may only run at a quiescent epoch. A handler attempting a
// boundary-only operation mid-window must throw under every executor —
// sequential, and channel sync at >1 thread, where "mid-window" means
// "outside a collapsed epoch". Worker-side throws must surface on the
// calling thread after a clean protocol drain.
class QuiescenceError : public ::testing::TestWithParam<int> {};

TEST_P(QuiescenceError, BoundaryOpsOutsideQuiescentEpochThrow) {
  const std::int32_t threads = GetParam();
  EngineOptions o;
  o.lookahead = milliseconds(1);
  o.end_time = seconds(3600);
  o.sync = SyncMode::kChannel;
  Engine engine(o);
  engine.add_lp(std::make_unique<HopLp>(1, /*misbehave=*/true));
  engine.add_lp(std::make_unique<HopLp>(0));
  engine.schedule(0, 0, kEvHop, 4);
  try {
    if (threads > 0) {
      engine.run_threaded(threads);
    } else {
      engine.run();
    }
    FAIL() << "expected EngineError";
  } catch (const EngineError& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kInternal);
  }
}

INSTANTIATE_TEST_SUITE_P(Executors, QuiescenceError,
                         ::testing::Values(0, 2, 3));

}  // namespace
}  // namespace massf
