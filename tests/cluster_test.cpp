#include <gtest/gtest.h>

#include "cluster/cost_model.hpp"
#include "cluster/metrics.hpp"

namespace massf {
namespace {

TEST(ClusterModel, MatchesPaperCalibration) {
  ClusterModel cluster;
  // Paper Section 3.4.1: ~0.58 ms synchronization cost for 100 nodes.
  EXPECT_NEAR(cluster.sync_cost_s(100), 0.58e-3, 0.02e-3);
  // Monotonically increasing in node count.
  EXPECT_LT(cluster.sync_cost_s(8), cluster.sync_cost_s(90));
  EXPECT_GT(cluster.sync_cost_s(1), 0);
}

TEST(ClusterModel, SyncCostTimeConsistent) {
  ClusterModel cluster;
  cluster.num_engine_nodes = 90;
  EXPECT_EQ(cluster.sync_cost_time(),
            from_seconds(cluster.sync_cost_s(90)));
}

TEST(ClusterModel, MaxEventRate) {
  ClusterModel cluster;
  cluster.cost_per_event_s = 5e-6;
  EXPECT_DOUBLE_EQ(cluster.max_event_rate_per_node(), 200000.0);
}

TEST(ClusterModel, MigrationCost) {
  ClusterModel cluster;
  cluster.migrate_base_s = 100e-6;
  cluster.migrate_bandwidth_bps = 1e9;
  // The per-batch base applies even when no events were pending.
  EXPECT_DOUBLE_EQ(cluster.migration_cost_s(0), 100e-6);
  // 1 MB over 1 Gb/s = 8 ms on top of the base.
  EXPECT_DOUBLE_EQ(cluster.migration_cost_s(1'000'000), 100e-6 + 8e-3);
  EXPECT_LT(cluster.migration_cost_s(100), cluster.migration_cost_s(10000));
}

TEST(Metrics, ComputedFromRunStats) {
  RunStats stats;
  stats.total_events = 1000000;
  stats.events_per_lp = {600000, 400000};
  stats.modeled_wall_s = 4.0;
  stats.modeled_sync_s = 1.0;
  stats.num_windows = 100;

  ClusterModel cluster;
  cluster.cost_per_event_s = 5e-6;
  const SimulationMetrics m = compute_metrics(stats, cluster);

  EXPECT_DOUBLE_EQ(m.simulation_time_s, 4.0);
  EXPECT_EQ(m.total_events, 1000000u);
  EXPECT_DOUBLE_EQ(m.sync_fraction, 0.25);
  // Rates 150k and 100k -> CoV = 0.2.
  EXPECT_NEAR(m.load_imbalance, 0.2, 1e-9);
  // Tseq = 1e6/2e5 = 5 s; PE = 5 / (2 * 4) = 0.625.
  EXPECT_NEAR(m.parallel_efficiency, 0.625, 1e-9);
}

TEST(Metrics, ZeroWallClockSafe) {
  RunStats stats;
  stats.events_per_lp = {0, 0};
  ClusterModel cluster;
  const SimulationMetrics m = compute_metrics(stats, cluster);
  EXPECT_DOUBLE_EQ(m.parallel_efficiency, 0);
  EXPECT_DOUBLE_EQ(m.sync_fraction, 0);
}

}  // namespace
}  // namespace massf
