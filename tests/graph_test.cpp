#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "graph/algorithms.hpp"
#include "graph/graph.hpp"
#include "graph/union_find.hpp"
#include "util/rng.hpp"

namespace massf {
namespace {

Graph triangle() {
  GraphBuilder b(3);
  b.add_edge(0, 1, 2);
  b.add_edge(1, 2, 3);
  b.add_edge(0, 2, 5);
  return b.build();
}

TEST(GraphBuilder, BasicCounts) {
  const Graph g = triangle();
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_EQ(g.total_vertex_weight(), 3);  // default weight 1
  EXPECT_EQ(g.degree(0), 2);
}

TEST(GraphBuilder, DuplicateEdgesMerge) {
  GraphBuilder b(2);
  b.add_edge(0, 1, 2);
  b.add_edge(1, 0, 3);  // same undirected edge
  const Graph g = b.build();
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.edge_weight(0), 5);
}

TEST(GraphBuilder, SelfLoopsDropped) {
  GraphBuilder b(2);
  b.add_edge(0, 0, 9);
  b.add_edge(0, 1, 1);
  const Graph g = b.build();
  EXPECT_EQ(g.num_edges(), 1);
}

TEST(GraphBuilder, VertexWeights) {
  GraphBuilder b(2);
  b.set_vertex_weight(0, 10);
  b.set_vertex_weight(1, 20);
  const Graph g = b.build();
  EXPECT_EQ(g.vertex_weight(0), 10);
  EXPECT_EQ(g.total_vertex_weight(), 30);
}

TEST(Graph, CsrSymmetric) {
  const Graph g = triangle();
  // Every edge appears in both endpoints' adjacency with the same weight.
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const VertexId u = g.edge_u(e), v = g.edge_v(e);
    bool found_uv = false, found_vu = false;
    auto nbrs = g.neighbors(u);
    auto ws = g.arc_weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] == v && ws[i] == g.edge_weight(e)) found_uv = true;
    }
    nbrs = g.neighbors(v);
    ws = g.arc_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] == u && ws[i] == g.edge_weight(e)) found_vu = true;
    }
    EXPECT_TRUE(found_uv && found_vu);
  }
}

TEST(Graph, IncidentWeight) {
  const Graph g = triangle();
  EXPECT_EQ(g.incident_weight(0), 7);  // 2 + 5
  EXPECT_EQ(g.incident_weight(1), 5);  // 2 + 3
}

TEST(Graph, SetVertexWeights) {
  Graph g = triangle();
  g.set_vertex_weights({4, 5, 6});
  EXPECT_EQ(g.vertex_weight(2), 6);
  EXPECT_EQ(g.total_vertex_weight(), 15);
}

TEST(Graph, SetEdgeWeightsUpdatesArcs) {
  Graph g = triangle();
  std::vector<Weight> w(static_cast<std::size_t>(g.num_edges()), 7);
  g.set_edge_weights(std::move(w));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (Weight aw : g.arc_weights(v)) EXPECT_EQ(aw, 7);
  }
}

TEST(Contract, MergesClusters) {
  // Path 0-1-2-3; contract {0,1} and {2,3}.
  GraphBuilder b(4);
  b.set_vertex_weight(0, 1);
  b.set_vertex_weight(1, 2);
  b.set_vertex_weight(2, 3);
  b.set_vertex_weight(3, 4);
  b.add_edge(0, 1, 10);
  b.add_edge(1, 2, 20);
  b.add_edge(2, 3, 30);
  const Graph g = b.build();

  const std::vector<VertexId> cluster{0, 0, 1, 1};
  const Graph c = contract(g, cluster, 2);
  EXPECT_EQ(c.num_vertices(), 2);
  EXPECT_EQ(c.num_edges(), 1);
  EXPECT_EQ(c.vertex_weight(0), 3);
  EXPECT_EQ(c.vertex_weight(1), 7);
  EXPECT_EQ(c.edge_weight(0), 20);  // only the 1-2 edge crosses
}

TEST(Contract, ParallelEdgesSum) {
  // Square 0-1-2-3-0; contract {0,1} and {2,3} -> two parallel cross edges.
  GraphBuilder b(4);
  b.add_edge(0, 1, 1);
  b.add_edge(1, 2, 5);
  b.add_edge(2, 3, 1);
  b.add_edge(3, 0, 7);
  const Graph g = b.build();
  const std::vector<VertexId> cluster{0, 0, 1, 1};
  const Graph c = contract(g, cluster, 2);
  EXPECT_EQ(c.num_edges(), 1);
  EXPECT_EQ(c.edge_weight(0), 12);
}

TEST(Contract, EdgeOriginPicksMinAux) {
  GraphBuilder b(4);
  b.add_edge(0, 1, 1);
  b.add_edge(1, 2, 1);  // aux 50
  b.add_edge(3, 0, 1);  // aux 10  (edge ids assigned after sorting by (u,v))
  b.add_edge(2, 3, 1);
  const Graph g = b.build();
  // Find per-edge aux by endpoints.
  std::vector<std::int64_t> aux(static_cast<std::size_t>(g.num_edges()));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto u = g.edge_u(e), v = g.edge_v(e);
    if ((u == 1 && v == 2) || (u == 2 && v == 1)) {
      aux[static_cast<std::size_t>(e)] = 50;
    } else if ((u == 0 && v == 3) || (u == 3 && v == 0)) {
      aux[static_cast<std::size_t>(e)] = 10;
    } else {
      aux[static_cast<std::size_t>(e)] = 99;
    }
  }
  const std::vector<VertexId> cluster{0, 0, 1, 1};
  std::vector<EdgeId> origin;
  const Graph c = contract(g, cluster, 2, aux, &origin);
  ASSERT_EQ(c.num_edges(), 1);
  ASSERT_EQ(origin.size(), 1u);
  EXPECT_EQ(aux[static_cast<std::size_t>(origin[0])], 10);
}

TEST(UnionFind, BasicMerge) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_sets(), 5);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(1, 0));
  EXPECT_TRUE(uf.unite(2, 3));
  EXPECT_EQ(uf.num_sets(), 3);
  EXPECT_EQ(uf.find(0), uf.find(1));
  EXPECT_NE(uf.find(0), uf.find(2));
}

TEST(UnionFind, CompressIsDense) {
  UnionFind uf(6);
  uf.unite(4, 5);
  uf.unite(0, 2);
  const auto label = uf.compress();
  EXPECT_EQ(label.size(), 6u);
  const auto max_label = *std::max_element(label.begin(), label.end());
  EXPECT_EQ(max_label, uf.num_sets() - 1);
  EXPECT_EQ(label[0], label[2]);
  EXPECT_EQ(label[4], label[5]);
  EXPECT_NE(label[0], label[4]);
}

TEST(ConnectedComponents, TwoIslands) {
  GraphBuilder b(5);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(3, 4);
  const Graph g = b.build();
  VertexId nc = 0;
  const auto comp = connected_components(g, &nc);
  EXPECT_EQ(nc, 2);
  EXPECT_EQ(comp[0], comp[2]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_FALSE(is_connected(g));
}

TEST(ConnectedComponents, EmptyGraphConnected) {
  GraphBuilder b(0);
  EXPECT_TRUE(is_connected(b.build()));
}

TEST(BfsDistances, PathGraph) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  const Graph g = b.build();
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[0], 0);
  EXPECT_EQ(d[3], 3);
}

TEST(BfsDistances, UnreachableIsMinusOne) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  const Graph g = b.build();
  EXPECT_EQ(bfs_distances(g, 0)[2], -1);
}

TEST(DegreeHistogram, Counts) {
  const Graph g = triangle();
  const auto h = degree_histogram(g);
  ASSERT_EQ(h.size(), 3u);
  EXPECT_EQ(h[2], 3);  // all three vertices have degree 2
}

TEST(PowerLawExponent, NegativeForBaGraph) {
  // Preferential-attachment graph has a heavy-tailed degree distribution.
  Rng rng(11);
  const VertexId n = 2000;
  GraphBuilder b(n);
  std::vector<VertexId> arcs{0, 1};
  b.add_edge(0, 1);
  for (VertexId v = 2; v < n; ++v) {
    const VertexId t = arcs[rng.uniform(arcs.size())];
    b.add_edge(v, t);
    arcs.push_back(v);
    arcs.push_back(t);
  }
  const Graph g = b.build();
  const double slope = power_law_exponent(g);
  EXPECT_LT(slope, -1.0);
}

}  // namespace
}  // namespace massf
