// Multi-process executor tests (DESIGN.md section 5j).
//
// Three layers:
//  * ShmRing units — frame roundtrips, wraparound across the ring end,
//    full-ring backpressure, and a producer/consumer hammer that checks
//    the release/acquire protocol never exposes a torn frame.
//  * Executor equality — fork-mode sharded runs of the calibration ring
//    must reproduce the sequential checksum and stats bit-identically, at
//    several shard counts, with scheduled LP migrations, and after a
//    SIGKILLed worker is recovered from the per-shard checkpoint set.
//  * Differential fuzz — 24 generated scenarios (the pdes_fuzz_test
//    recipe: random fan-out, cross-LP sends, hook injection, hook and
//    handler stops) compared field-by-field between the sequential
//    reference and 2/3-shard runs.
//
// These carry the `shard` label: they fork worker processes, which the
// tier-1 (fast) lane and the TSan lane both must not do.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/ckpt.hpp"
#include "pdes/engine.hpp"
#include "shard/driver.hpp"
#include "shard/ring.hpp"
#include "shard/shm.hpp"
#include "shard/supervisor.hpp"
#include "util/warn.hpp"

namespace massf::shard {
namespace {

// ---- ShmRing units ----------------------------------------------------------

struct AlignedFree {
  void operator()(void* p) const { std::free(p); }
};

std::unique_ptr<void, AlignedFree> ring_mem(std::size_t capacity) {
  const std::size_t bytes = (ShmRing::bytes_for(capacity) + 63) / 64 * 64;
  void* mem = std::aligned_alloc(64, bytes);
  std::memset(mem, 0xa5, bytes);  // stale garbage: create() must not care
  return std::unique_ptr<void, AlignedFree>(mem);
}

TEST(ShmRing, FrameRoundtrip) {
  auto mem = ring_mem(256);
  ShmRing ring = ShmRing::create(mem.get(), 256);
  const std::uint8_t payload[] = {1, 2, 3, 4, 5};
  ASSERT_TRUE(ring.try_push(kFrameBatch, payload, sizeof(payload)));
  ASSERT_TRUE(ring.try_push(kFrameWindowEnd, nullptr, 0));

  std::uint8_t kind = 0;
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(ring.try_pop(&kind, &out));
  EXPECT_EQ(kind, kFrameBatch);
  EXPECT_EQ(out, std::vector<std::uint8_t>(payload, payload + 5));
  ASSERT_TRUE(ring.try_pop(&kind, &out));
  EXPECT_EQ(kind, kFrameWindowEnd);
  EXPECT_TRUE(out.empty());
  EXPECT_FALSE(ring.try_pop(&kind, &out));  // drained
}

TEST(ShmRing, WraparoundPreservesFrames) {
  // Capacity small enough that frames straddle the ring end constantly;
  // every payload byte pattern must survive the two-part memcpy.
  constexpr std::size_t kCap = 64;
  auto mem = ring_mem(kCap);
  ShmRing ring = ShmRing::create(mem.get(), kCap);
  std::uint64_t state = 42;
  for (int i = 0; i < 1000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const auto size = static_cast<std::uint32_t>(state % 24);
    std::vector<std::uint8_t> payload(size);
    for (std::uint32_t b = 0; b < size; ++b) {
      payload[b] = static_cast<std::uint8_t>(state >> (b % 8 * 8));
    }
    ASSERT_TRUE(ring.try_push(kFrameBatch, payload.data(), size)) << i;
    std::uint8_t kind = 0;
    std::vector<std::uint8_t> out;
    ASSERT_TRUE(ring.try_pop(&kind, &out)) << i;
    EXPECT_EQ(kind, kFrameBatch);
    EXPECT_EQ(out, payload) << "iteration " << i;
  }
}

TEST(ShmRing, FullRingBackpressure) {
  constexpr std::size_t kCap = 128;
  auto mem = ring_mem(kCap);
  ShmRing ring = ShmRing::create(mem.get(), kCap);
  const std::uint8_t payload[11] = {};
  int pushed = 0;
  while (ring.try_push(kFrameBatch, payload, sizeof(payload))) ++pushed;
  // 16 bytes per frame (5 overhead + 11), 128 capacity: exactly 8 fit.
  EXPECT_EQ(pushed, 8);
  EXPECT_EQ(ring.used(), kCap);

  std::uint8_t kind = 0;
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(ring.try_pop(&kind, &out));
  EXPECT_TRUE(ring.try_push(kFrameBatch, payload, sizeof(payload)));
  EXPECT_FALSE(ring.try_push(kFrameBatch, payload, sizeof(payload)));
  int drained = 0;
  while (ring.try_pop(&kind, &out)) ++drained;
  EXPECT_EQ(drained, 8);
}

TEST(ShmRing, ConcurrentProducerConsumerNoTornFrames) {
  // The torn-write check: a real producer/consumer pair over a tiny ring.
  // The consumer recomputes each frame's FNV fold from its bytes; a frame
  // exposed before its release store (or overwritten mid-read) cannot
  // keep byte 0..n consistent with the fold carried in the first 8 bytes.
  constexpr std::size_t kCap = 256;
  constexpr int kFrames = 20000;
  auto mem = ring_mem(kCap);
  ShmRing ring = ShmRing::create(mem.get(), kCap);

  std::thread producer([&ring] {
    std::uint64_t state = 7;
    for (int i = 0; i < kFrames; ++i) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      const auto body = static_cast<std::uint32_t>(state % 64);
      std::vector<std::uint8_t> payload(8 + body);
      std::uint64_t fold = 1469598103934665603ULL;
      for (std::uint32_t b = 0; b < body; ++b) {
        payload[8 + b] = static_cast<std::uint8_t>((state >> (b % 57)) ^ b);
        fold = (fold ^ payload[8 + b]) * 1099511628211ULL;
      }
      std::memcpy(payload.data(), &fold, 8);
      while (!ring.try_push(kFrameBatch, payload.data(),
                            static_cast<std::uint32_t>(payload.size()))) {
        std::this_thread::yield();
      }
    }
  });

  int received = 0;
  while (received < kFrames) {
    std::uint8_t kind = 0;
    std::vector<std::uint8_t> out;
    if (!ring.try_pop(&kind, &out)) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_EQ(kind, kFrameBatch);
    ASSERT_GE(out.size(), 8u);
    std::uint64_t want = 0;
    std::memcpy(&want, out.data(), 8);
    std::uint64_t fold = 1469598103934665603ULL;
    for (std::size_t b = 8; b < out.size(); ++b) {
      fold = (fold ^ out[b]) * 1099511628211ULL;
    }
    ASSERT_EQ(fold, want) << "torn frame " << received;
    ++received;
  }
  producer.join();
}

TEST(ShardDriver, InitialOwnersPartitionIsContiguousAndComplete) {
  const auto owners = ShardDriver::initial_owners(10, 3);
  ASSERT_EQ(owners.size(), 10u);
  std::vector<int> counts(3, 0);
  for (std::size_t i = 1; i < owners.size(); ++i) {
    EXPECT_GE(owners[i], owners[i - 1]);  // contiguous blocks
  }
  for (const std::int32_t o : owners) {
    ASSERT_GE(o, 0);
    ASSERT_LT(o, 3);
    ++counts[static_cast<std::size_t>(o)];
  }
  for (const int c : counts) EXPECT_GE(c, 3);
}

// ---- calibration-ring equality ---------------------------------------------

constexpr std::int32_t kEvHop = 1;
constexpr std::int32_t kEvLocal = 2;

class RingLp final : public LogicalProcess {
 public:
  RingLp(LpId next, std::int64_t chain) : next_(next), chain_(chain) {}

  void handle(Engine& engine, const Event& ev) override {
    checksum =
        checksum * 1099511628211ULL + static_cast<std::uint64_t>(ev.time);
    if (ev.type == kEvHop) {
      if (ev.a > 0) {
        engine.schedule(next_, ev.time + engine.options().lookahead, kEvHop,
                        ev.a - 1);
      }
      if (chain_ > 0) {
        engine.schedule(engine.current_lp(), ev.time + microseconds(1),
                        kEvLocal, static_cast<std::uint64_t>(chain_ - 1));
      }
    } else if (ev.a > 0) {
      engine.schedule(engine.current_lp(), ev.time + microseconds(1),
                      kEvLocal, ev.a - 1);
    }
  }

  void save(ckpt::Writer& w) const override { w.u64(checksum); }
  bool load(ckpt::Reader& r) override {
    checksum = r.u64();
    return r.ok();
  }

  std::uint64_t checksum = 0;

 private:
  LpId next_;
  std::int64_t chain_;
};

ShardWorkload build_ring(std::int64_t lps, std::int64_t chain,
                         std::int64_t hops) {
  EngineOptions o;
  o.lookahead = milliseconds(1);
  o.end_time = seconds(3600);
  auto engine = std::make_unique<Engine>(o);
  auto ptrs = std::make_shared<std::vector<RingLp*>>();
  for (std::int64_t i = 0; i < lps; ++i) {
    auto lp = std::make_unique<RingLp>(static_cast<LpId>((i + 1) % lps),
                                       chain);
    ptrs->push_back(lp.get());
    engine->add_lp(std::move(lp));
  }
  for (std::int64_t i = 0; i < lps; ++i) {
    engine->schedule(static_cast<LpId>(i), 0, kEvHop,
                     static_cast<std::uint64_t>(hops));
  }
  ShardWorkload w;
  w.engine = std::move(engine);
  w.lp_checksum = [ptrs](LpId i) {
    return (*ptrs)[static_cast<std::size_t>(i)]->checksum;
  };
  return w;
}

std::uint64_t double_bits(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

/// Everything deterministic a ShardResult carries, flattened for EXPECT_EQ.
std::vector<std::uint64_t> result_signature(const RunStats& stats,
                                            std::uint64_t checksum) {
  std::vector<std::uint64_t> sig;
  sig.push_back(checksum);
  sig.push_back(stats.total_events);
  sig.push_back(stats.num_windows);
  sig.push_back(static_cast<std::uint64_t>(stats.end_vtime));
  sig.push_back(stats.cross_lp_events);
  sig.push_back(stats.merge_batches);
  sig.push_back(double_bits(stats.modeled_wall_s));
  sig.push_back(double_bits(stats.modeled_sync_s));
  sig.push_back(double_bits(stats.modeled_migrate_s));
  for (const std::uint64_t e : stats.events_per_lp) sig.push_back(e);
  for (const double b : stats.busy_s) sig.push_back(double_bits(b));
  return sig;
}

std::vector<std::uint64_t> sequential_signature(ShardWorkload w) {
  const RunStats stats = w.engine->run();
  std::uint64_t checksum = 0;
  for (LpId i = 0; i < w.engine->num_lps(); ++i) {
    checksum = checksum * 31 + w.lp_checksum(i);
  }
  return result_signature(stats, checksum);
}

TEST(ShardExecutor, MatchesSequentialAtSeveralShardCounts) {
  const auto reference =
      sequential_signature(build_ring(/*lps=*/8, /*chain=*/8, /*hops=*/200));
  for (const std::int32_t shards : {2, 3, 5, 8}) {
    ShardOptions opts;
    opts.shards = shards;
    opts.fallback = false;
    const ShardResult r =
        run_sharded(opts, [] { return build_ring(8, 8, 200); });
    EXPECT_EQ(r.shards, shards);
    EXPECT_EQ(reference, result_signature(r.stats, r.checksum))
        << "shards=" << shards;
  }
}

TEST(ShardExecutor, ClampsShardCountToLpsWithConfigWarning) {
  WarningLog::instance().clear();
  ShardOptions opts;
  opts.shards = 9;  // only 4 LPs: an LP-less worker is useless
  opts.fallback = false;
  const ShardResult r = run_sharded(opts, [] { return build_ring(4, 4, 50); });
  EXPECT_EQ(r.shards, 4);
  const auto warnings = WarningLog::instance().snapshot();
  ASSERT_FALSE(warnings.empty());
  EXPECT_EQ(warnings.front().category, ErrorCategory::kConfig);
  EXPECT_NE(warnings.front().message.find("clamped"), std::string::npos);
  // The clamped run must still match the sequential reference.
  const auto reference = sequential_signature(build_ring(4, 4, 50));
  EXPECT_EQ(reference, result_signature(r.stats, r.checksum));
}

TEST(ShardExecutor, ScheduledMigrationsPreserveTheTrace) {
  const auto reference = sequential_signature(build_ring(8, 8, 200));
  ShardOptions opts;
  opts.shards = 2;
  opts.fallback = false;
  // Bounce LP 2 across the shard boundary mid-run and move LP 7 once: the
  // checkpoint-serialized state transfer must be invisible to the trace.
  opts.migrations = {{50, 2, 1}, {90, 2, 0}, {120, 7, 0}};
  const ShardResult r =
      run_sharded(opts, [] { return build_ring(8, 8, 200); });
  EXPECT_EQ(reference, result_signature(r.stats, r.checksum));
}

TEST(ShardExecutor, SigkilledWorkerRecoversFromShardCheckpoints) {
  const std::string dir =
      std::filesystem::temp_directory_path() / "massf_shard_recover_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  const auto reference = sequential_signature(build_ring(8, 8, 300));
  ShardOptions opts;
  opts.shards = 2;
  opts.ckpt_dir = dir;
  opts.ckpt_every = 64;
  opts.max_retries = 0;       // straight to the fallback rung
  opts.kill_shard = 1;
  opts.kill_after_windows = 150;  // after the second checkpoint set
  opts.ring_dump_path = dir + "/dump.json";
  const ShardResult r =
      run_sharded(opts, [] { return build_ring(8, 8, 300); });
  EXPECT_EQ(r.shards, 1);  // completed on the single-process rung
  EXPECT_GE(r.attempts, 2);
  EXPECT_GT(r.degraded_rung, 0);
  EXPECT_TRUE(r.recovered);
  EXPECT_EQ(reference, result_signature(r.stats, r.checksum));
  // The watchdog's failure artifact must exist and name the signal.
  std::ifstream dump(dir + "/dump.json");
  ASSERT_TRUE(dump.good());
  std::stringstream buf;
  buf << dump.rdbuf();
  EXPECT_NE(buf.str().find("massf.shard.dump.v1"), std::string::npos);
  EXPECT_NE(buf.str().find("signal 9"), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(ShardExecutor, CrashMidBatchRecovers) {
  // SIGKILL one frame into a cross-shard batch: the peer sees a torn
  // window (batch without its window-end) and the supervisor must still
  // detect, kill, and recover — from checkpoints, to the same trace.
  const auto reference = sequential_signature(build_ring(8, 8, 300));
  ShardOptions opts;
  opts.shards = 2;
  opts.ckpt_dir = std::filesystem::temp_directory_path() /
                  "massf_shard_midbatch_test";
  std::filesystem::remove_all(opts.ckpt_dir);
  std::filesystem::create_directories(opts.ckpt_dir);
  opts.ckpt_every = 64;
  opts.max_retries = 0;
  opts.kill_shard = 0;
  opts.kill_after_windows = 140;
  opts.kill_in_send = true;
  const ShardResult r =
      run_sharded(opts, [] { return build_ring(8, 8, 300); });
  EXPECT_TRUE(r.recovered);
  EXPECT_EQ(reference, result_signature(r.stats, r.checksum));
  std::filesystem::remove_all(opts.ckpt_dir);
}

// ---- differential fuzz (the pdes_fuzz_test recipe) --------------------------

constexpr int kNumSeeds = 24;

std::uint64_t mix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

struct FuzzScenario {
  std::int32_t lps;
  SimTime lookahead;
  SimTime end_time;
  std::int32_t initial_events;
  std::uint64_t fanout_budget;
  bool hook_injects;
  std::uint64_t stop_after_windows;
  std::uint64_t handler_stop_events;
};

FuzzScenario make_scenario(std::uint64_t seed) {
  std::uint64_t s = seed * 0x9e3779b97f4a7c15ULL + 1;
  FuzzScenario sc;
  sc.lps = static_cast<std::int32_t>(2 + mix64(s) % 8);
  sc.lookahead = microseconds(200 + 200 * static_cast<std::int64_t>(
                                               mix64(s) % 9));
  sc.end_time = milliseconds(20 + static_cast<std::int64_t>(mix64(s) % 60));
  sc.initial_events =
      seed % 17 == 0 ? 0 : static_cast<std::int32_t>(1 + mix64(s) % 6);
  sc.fanout_budget = 40 + mix64(s) % 160;
  sc.hook_injects = mix64(s) % 3 != 0;
  sc.stop_after_windows = mix64(s) % 4 == 0 ? 10 + mix64(s) % 40 : 0;
  sc.handler_stop_events = mix64(s) % 5 == 0 ? 50 + mix64(s) % 200 : 0;
  return sc;
}

class FuzzLp final : public LogicalProcess {
 public:
  FuzzLp(std::uint64_t seed, LpId self, std::int32_t num_lps,
         std::shared_ptr<const FuzzScenario> sc)
      : rng_(seed ^ (0xabcdef12345678ULL + static_cast<std::uint64_t>(self))),
        self_(self),
        num_lps_(num_lps),
        sc_(std::move(sc)) {}

  void handle(Engine& engine, const Event& ev) override {
    ++count;
    checksum = checksum * 1099511628211ULL +
               (static_cast<std::uint64_t>(ev.time) ^
                (static_cast<std::uint64_t>(ev.type) << 48) ^ ev.a);
    const std::uint64_t r = mix64(rng_);
    if (ev.a > 0) {
      const SimTime la = engine.options().lookahead;
      switch (r % 5) {
        case 0:
        case 1: {
          const SimTime d = 1 + static_cast<SimTime>(r >> 8) % la;
          engine.schedule(self_, ev.time + d, 1, ev.a - 1);
          break;
        }
        case 2: {
          const LpId dst = static_cast<LpId>(
              (r >> 16) % static_cast<std::uint64_t>(num_lps_));
          const SimTime jitter = static_cast<SimTime>((r >> 40) % 1000);
          engine.schedule(dst, ev.time + la + jitter, 2, ev.a - 1);
          break;
        }
        case 3: {
          engine.schedule(self_, ev.time + 1 + static_cast<SimTime>(r % 500),
                          3, ev.a / 2);
          const LpId dst = static_cast<LpId>(
              (r >> 16) % static_cast<std::uint64_t>(num_lps_));
          engine.schedule(dst, ev.time + la, 4, ev.a - 1);
          break;
        }
        default:
          break;
      }
    }
    if (sc_->handler_stop_events > 0 && count == sc_->handler_stop_events) {
      engine.request_stop();
    }
  }

  std::uint64_t count = 0;
  std::uint64_t checksum = 0;

 private:
  std::uint64_t rng_;
  LpId self_;
  std::int32_t num_lps_;
  std::shared_ptr<const FuzzScenario> sc_;
};

/// Builds the fuzz scenario as a shard workload. Every call with the same
/// seed yields the identical engine — hooks included — which is exactly
/// the determinism contract the workers rely on.
ShardWorkload build_fuzz(std::uint64_t seed) {
  const auto sc = std::make_shared<const FuzzScenario>(make_scenario(seed));
  EngineOptions o;
  o.lookahead = sc->lookahead;
  o.end_time = sc->end_time;
  o.cost_per_event_s = 1e-6;
  o.sync_cost_s = 1e-5;
  auto engine = std::make_unique<Engine>(o);
  auto ptrs = std::make_shared<std::vector<FuzzLp*>>();
  for (std::int32_t i = 0; i < sc->lps; ++i) {
    auto lp = std::make_unique<FuzzLp>(seed, i, sc->lps, sc);
    ptrs->push_back(lp.get());
    engine->add_lp(std::move(lp));
  }
  std::uint64_t init_rng = seed ^ 0x5151515151515151ULL;
  for (std::int32_t i = 0; i < sc->initial_events; ++i) {
    const std::uint64_t r = mix64(init_rng);
    engine->schedule(
        static_cast<LpId>(r % static_cast<std::uint64_t>(sc->lps)),
        static_cast<SimTime>(r >> 32) % milliseconds(5), 1,
        sc->fanout_budget);
  }

  // Hook state rides in shared_ptrs so the lambda (copied into the engine)
  // owns it; every rebuild starts from the same rng seed.
  auto hook_rng = std::make_shared<std::uint64_t>(seed ^ 0xf00dULL);
  auto windows_seen = std::make_shared<std::uint64_t>(0);
  const FuzzScenario scv = *sc;
  engine->hooks().barrier.push_back(
      [hook_rng, windows_seen, scv](Engine& eng, SimTime floor) {
        ++*windows_seen;
        if (scv.hook_injects && mix64(*hook_rng) % 7 == 0) {
          const std::uint64_t r = mix64(*hook_rng);
          eng.schedule(
              static_cast<LpId>(r % static_cast<std::uint64_t>(scv.lps)),
              floor + eng.options().lookahead + static_cast<SimTime>(r % 1000),
              5, 3);
        }
        if (scv.stop_after_windows > 0 &&
            *windows_seen == scv.stop_after_windows) {
          eng.request_stop();
        }
      });

  ShardWorkload w;
  w.engine = std::move(engine);
  w.lp_checksum = [ptrs](LpId i) {
    return (*ptrs)[static_cast<std::size_t>(i)]->checksum;
  };
  return w;
}

class ShardFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ShardFuzz, ShardedMatchesSequential) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const auto reference = sequential_signature(build_fuzz(seed));
  for (const std::int32_t shards : {2, 3}) {
    ShardOptions opts;
    opts.shards = shards;
    opts.fallback = false;
    const ShardResult r =
        run_sharded(opts, [seed] { return build_fuzz(seed); });
    EXPECT_EQ(reference, result_signature(r.stats, r.checksum))
        << "seed=" << seed << " shards=" << shards;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardFuzz, ::testing::Range(0, kNumSeeds));

}  // namespace
}  // namespace massf::shard
