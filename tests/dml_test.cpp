#include <gtest/gtest.h>

#include "dml/dml.hpp"
#include "dml/network_dml.hpp"
#include "topology/brite.hpp"
#include "topology/mabrite.hpp"

namespace massf {
namespace {

TEST(Dml, ParsesBasicDocument) {
  const auto root = parse_dml(R"(
    Net [
      frequency 1000000000
      name "my network"
      router [ id 3 ]
      router [ id 4 ]
    ]
  )");
  ASSERT_TRUE(root.has_value());
  const DmlNode* net = root->find("Net");
  ASSERT_NE(net, nullptr);
  EXPECT_EQ(net->require_int("frequency"), 1000000000);
  EXPECT_EQ(net->require_string("name"), "my network");
  EXPECT_EQ(net->find_all("router").size(), 2u);
  EXPECT_EQ(net->find_all("router")[1]->require_int("id"), 4);
}

TEST(Dml, CommentsIgnored) {
  const auto root = parse_dml(R"(
    # a hash comment
    key 1
    // a slash comment
    other [ inner 2 ]  # trailing
  )");
  ASSERT_TRUE(root.has_value());
  EXPECT_EQ(root->require_int("key"), 1);
  EXPECT_EQ(root->find("other")->require_int("inner"), 2);
}

TEST(Dml, NestedLists) {
  const auto root = parse_dml("a [ b [ c [ d 7 ] ] ]");
  ASSERT_TRUE(root.has_value());
  EXPECT_EQ(root->find("a")->find("b")->find("c")->require_int("d"), 7);
}

TEST(Dml, ErrorsReportLine) {
  DmlParseError err;
  EXPECT_FALSE(parse_dml("a [\nb [\n", &err).has_value());
  EXPECT_GE(err.line, 2);
  EXPECT_FALSE(parse_dml("]", &err).has_value());
  EXPECT_FALSE(parse_dml("key", &err).has_value());  // key without value
}

TEST(Dml, TypedAccessorsWithFallback) {
  const auto root = parse_dml("x 3 y 2.5 s hello");
  ASSERT_TRUE(root.has_value());
  EXPECT_EQ(root->get_int("x", -1), 3);
  EXPECT_DOUBLE_EQ(root->get_double("y", 0), 2.5);
  EXPECT_EQ(root->get_string("s", ""), "hello");
  EXPECT_EQ(root->get_int("missing", 42), 42);
  EXPECT_DOUBLE_EQ(root->get_double("missing", 1.5), 1.5);
  EXPECT_EQ(root->get_string("missing", "dflt"), "dflt");
}

TEST(Dml, WriteParsesBack) {
  DmlNode root;
  DmlNode& top = root.add_child("Top");
  top.add_atom("count", std::int64_t{12});
  top.add_atom("rate", 2.5);
  top.add_atom("label", std::string("has spaces"));
  DmlNode& inner = top.add_child("inner");
  inner.add_atom("v", std::int64_t{-3});

  const std::string text = write_dml(root);
  const auto parsed = parse_dml(text);
  ASSERT_TRUE(parsed.has_value());
  const DmlNode* t = parsed->find("Top");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->require_int("count"), 12);
  EXPECT_DOUBLE_EQ(t->require_double("rate"), 2.5);
  EXPECT_EQ(t->require_string("label"), "has spaces");
  EXPECT_EQ(t->find("inner")->require_int("v"), -3);
}

TEST(Dml, QuotedStringsWithBrackets) {
  const auto root = parse_dml(R"(s "a [weird] # string")");
  ASSERT_TRUE(root.has_value());
  EXPECT_EQ(root->require_string("s"), "a [weird] # string");
}

TEST(Dml, EmptyListAndEmptyDocument) {
  const auto empty = parse_dml("");
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->attributes.empty());

  const auto root = parse_dml("box [ ]");
  ASSERT_TRUE(root.has_value());
  ASSERT_NE(root->find("box"), nullptr);
  EXPECT_TRUE(root->find("box")->attributes.empty());
}

TEST(Dml, RepeatedKeysPreserveOrder) {
  const auto root = parse_dml("v 1 v 2 v 3");
  ASSERT_TRUE(root.has_value());
  ASSERT_EQ(root->attributes.size(), 3u);
  EXPECT_EQ(root->attributes[0].atom, "1");
  EXPECT_EQ(root->attributes[2].atom, "3");
  // atom() returns the first.
  EXPECT_EQ(root->require_int("v"), 1);
}

TEST(Dml, AtomsWithPunctuation) {
  const auto root = parse_dml("path /a/b-c.d_e ratio -2.5e-3");
  ASSERT_TRUE(root.has_value());
  EXPECT_EQ(root->require_string("path"), "/a/b-c.d_e");
  EXPECT_DOUBLE_EQ(root->require_double("ratio"), -2.5e-3);
}

TEST(Dml, MixedAtomAndChildSameKey) {
  // `find` must skip atoms, `atom` must skip children.
  const auto root = parse_dml("x 5 x [ y 6 ]");
  ASSERT_TRUE(root.has_value());
  EXPECT_EQ(root->require_int("x"), 5);
  ASSERT_NE(root->find("x"), nullptr);
  EXPECT_EQ(root->find("x")->require_int("y"), 6);
}

// ---- network round trips -------------------------------------------------

void expect_networks_equal(const Network& a, const Network& b) {
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  ASSERT_EQ(a.num_routers, b.num_routers);
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    EXPECT_EQ(a.nodes[i].kind, b.nodes[i].kind);
    EXPECT_EQ(a.nodes[i].as_id, b.nodes[i].as_id);
    EXPECT_EQ(a.nodes[i].attach_router, b.nodes[i].attach_router);
    EXPECT_DOUBLE_EQ(a.nodes[i].x, b.nodes[i].x);
  }
  ASSERT_EQ(a.links.size(), b.links.size());
  for (std::size_t i = 0; i < a.links.size(); ++i) {
    EXPECT_EQ(a.links[i].a, b.links[i].a);
    EXPECT_EQ(a.links[i].b, b.links[i].b);
    EXPECT_EQ(a.links[i].latency, b.links[i].latency);
    EXPECT_DOUBLE_EQ(a.links[i].bandwidth_bps, b.links[i].bandwidth_bps);
    EXPECT_EQ(a.links[i].inter_as, b.links[i].inter_as);
  }
  ASSERT_EQ(a.as_info.size(), b.as_info.size());
  for (std::size_t i = 0; i < a.as_info.size(); ++i) {
    EXPECT_EQ(a.as_info[i].cls, b.as_info[i].cls);
    EXPECT_EQ(a.as_info[i].first_router, b.as_info[i].first_router);
    EXPECT_EQ(a.as_info[i].num_routers, b.as_info[i].num_routers);
  }
  ASSERT_EQ(a.as_adjacency.size(), b.as_adjacency.size());
  for (std::size_t i = 0; i < a.as_adjacency.size(); ++i) {
    EXPECT_EQ(a.as_adjacency[i].as_a, b.as_adjacency[i].as_a);
    EXPECT_EQ(a.as_adjacency[i].as_b, b.as_adjacency[i].as_b);
    EXPECT_EQ(a.as_adjacency[i].rel_ab, b.as_adjacency[i].rel_ab);
    EXPECT_EQ(a.as_adjacency[i].link, b.as_adjacency[i].link);
  }
}

TEST(NetworkDml, FlatRoundTrip) {
  BriteOptions o;
  o.num_routers = 120;
  o.num_hosts = 40;
  o.seed = 8;
  const Network net = generate_flat(o);
  const std::string text = network_to_dml_text(net);
  std::string error;
  const auto back = network_from_dml_text(text, &error);
  ASSERT_TRUE(back.has_value()) << error;
  expect_networks_equal(net, *back);
  EXPECT_EQ(back->validate(), "");
}

TEST(NetworkDml, MultiAsRoundTrip) {
  MaBriteOptions o;
  o.num_as = 8;
  o.routers_per_as = 10;
  o.num_hosts = 30;
  o.seed = 8;
  const Network net = generate_multi_as(o);
  const std::string text = network_to_dml_text(net);
  std::string error;
  const auto back = network_from_dml_text(text, &error);
  ASSERT_TRUE(back.has_value()) << error;
  expect_networks_equal(net, *back);
  EXPECT_EQ(back->validate(), "");
}

TEST(NetworkDml, RejectsMissingNetBlock) {
  std::string error;
  EXPECT_FALSE(network_from_dml_text("foo [ bar 1 ]", &error).has_value());
  EXPECT_NE(error.find("Net"), std::string::npos);
}

TEST(NetworkDml, RejectsInvalidNetwork) {
  // A host attached to a non-existent router fails validation.
  std::string error;
  const auto net = network_from_dml_text(R"(
    Net [
      router [ id 0 ]
      host [ id 1 attach 5 ]
      link [ a 0 b 1 latency_ns 1000 bandwidth_bps 1e8 ]
    ]
  )", &error);
  EXPECT_FALSE(net.has_value());
  EXPECT_FALSE(error.empty());
}

TEST(NetworkDml, HandWrittenMinimalNetwork) {
  std::string error;
  const auto net = network_from_dml_text(R"(
    # Two routers, one host each side.
    Net [
      router [ id 0 x 0 y 0 ]
      router [ id 1 x 100 y 0 ]
      host [ id 2 attach 0 ]
      host [ id 3 attach 1 ]
      link [ a 0 b 1 latency_ns 1000000 bandwidth_bps 1e9 ]
      link [ a 0 b 2 latency_ns 10000 bandwidth_bps 1e8 ]
      link [ a 1 b 3 latency_ns 10000 bandwidth_bps 1e8 ]
    ]
  )", &error);
  ASSERT_TRUE(net.has_value()) << error;
  EXPECT_EQ(net->num_routers, 2);
  EXPECT_EQ(net->num_hosts(), 2);
  EXPECT_EQ(net->min_link_latency(), microseconds(10));
}

}  // namespace
}  // namespace massf
