// Integration tests: the full pipeline (topology -> routing -> profiling ->
// mapping -> packet simulation -> metrics) at small scale, single- and
// multi-AS, across all mapping approaches.
#include <gtest/gtest.h>

#include <set>

#include "sim/report.hpp"
#include "sim/failover.hpp"
#include "sim/scenario.hpp"
#include "sim/scenario_config.hpp"

namespace massf {
namespace {

ScenarioOptions small_options(bool multi_as) {
  ScenarioOptions o;
  o.multi_as = multi_as;
  o.num_routers = 240;
  o.num_hosts = 120;
  o.num_as = 8;
  o.num_clients = 40;
  o.num_servers = 10;
  o.num_engines = 6;
  o.app = AppKind::kScaLapack;
  o.num_app_hosts = 9;
  o.end_time = seconds(3);
  o.profile_end_time = seconds(1);
  o.http.think_time_mean_s = 0.5;
  o.seed = 11;
  return o;
}

class ScenarioKinds
    : public ::testing::TestWithParam<std::tuple<bool, MappingKind>> {};

TEST_P(ScenarioKinds, RunsAndReportsSaneMetrics) {
  const auto [multi_as, kind] = GetParam();
  Scenario scenario(small_options(multi_as));
  const ExperimentResult r = scenario.run(kind);

  EXPECT_GT(r.metrics.total_events, 1000u);
  EXPECT_GT(r.metrics.simulation_time_s, 0);
  EXPECT_GT(r.metrics.num_windows, 0u);
  EXPECT_GE(r.metrics.parallel_efficiency, 0);
  EXPECT_LE(r.metrics.parallel_efficiency, 1.01);
  EXPECT_GE(r.metrics.load_imbalance, 0);
  EXPECT_GT(r.metrics.sync_fraction, 0);
  EXPECT_LT(r.metrics.sync_fraction, 1.0);

  // Traffic actually flowed and completed.
  EXPECT_GT(r.counters.flows_completed, 10u);
  EXPECT_GT(r.counters.forwarded, r.counters.delivered);

  // Mapping sanity.
  std::set<LpId> used(r.mapping.router_lp.begin(), r.mapping.router_lp.end());
  EXPECT_EQ(used.size(), 6u);
  EXPECT_GT(r.mapping.achieved_mll, 0);
}

INSTANTIATE_TEST_SUITE_P(
    All, ScenarioKinds,
    ::testing::Combine(::testing::Bool(),
                       ::testing::Values(MappingKind::kTop2,
                                         MappingKind::kProf2,
                                         MappingKind::kHTop,
                                         MappingKind::kHProf)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) ? "MultiAs" : "SingleAs") +
             mapping_kind_name(std::get<1>(info.param));
    });

TEST(Scenario, ProfileCachedAndNonTrivial) {
  Scenario scenario(small_options(false));
  const TrafficProfile& p1 = scenario.profile();
  const TrafficProfile& p2 = scenario.profile();
  EXPECT_EQ(&p1, &p2);  // cached
  std::uint64_t total = 0;
  for (auto e : p1.router_events) total += e;
  EXPECT_GT(total, 1000u);
}

TEST(Scenario, DeterministicEndToEnd) {
  const auto run_once = [] {
    Scenario scenario(small_options(false));
    const ExperimentResult r = scenario.run(MappingKind::kHProf);
    return std::make_tuple(r.metrics.total_events, r.stats.num_windows,
                           r.counters.forwarded, r.mapping.tmll);
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Scenario, HierarchicalImprovesOnFlat) {
  // The paper's headline: hierarchical profile-based mapping reduces
  // simulation time. At this small scale we assert the weaker, robust
  // property: HPROF's MLL clears the sync cost and its modeled time does
  // not exceed the flat mapping's by more than noise.
  ScenarioOptions o = small_options(false);
  o.num_routers = 400;
  o.num_hosts = 200;
  o.num_clients = 60;
  Scenario scenario(o);
  const ExperimentResult flat = scenario.run(MappingKind::kTop2);
  const ExperimentResult hier = scenario.run(MappingKind::kHProf);
  EXPECT_GT(hier.mapping.achieved_mll,
            scenario.options().cluster.sync_cost_time());
  EXPECT_LT(hier.metrics.simulation_time_s,
            1.10 * flat.metrics.simulation_time_s);
}

TEST(Scenario, LookaheadMatchesMapping) {
  Scenario scenario(small_options(false));
  const Mapping m = scenario.mapping_for(MappingKind::kHTop);
  EXPECT_EQ(scenario.lookahead_for(m.router_lp), m.achieved_mll);
}

TEST(Scenario, GridNpbWorkloadRuns) {
  ScenarioOptions o = small_options(false);
  o.app = AppKind::kGridNpb;
  o.num_app_hosts = 12;
  Scenario scenario(o);
  const ExperimentResult r = scenario.run(MappingKind::kHProf);
  EXPECT_GT(r.counters.flows_completed, 10u);
}

TEST(Scenario, NoAppStillRuns) {
  ScenarioOptions o = small_options(false);
  o.app = AppKind::kNone;
  Scenario scenario(o);
  const ExperimentResult r = scenario.run(MappingKind::kTop2);
  EXPECT_GT(r.metrics.total_events, 100u);
}

TEST(Scenario, MultiAsBgpTrafficDelivered) {
  Scenario scenario(small_options(true));
  const ExperimentResult r = scenario.run(MappingKind::kProf2);
  EXPECT_TRUE(scenario.forwarding().is_multi_as());
  EXPECT_GT(r.counters.flows_completed, 10u);
  // BGP route misses are counted, not crashed on.
  EXPECT_EQ(r.counters.dropped_no_route, 0u);
}

TEST(Scenario, ThreadedExecutorMatchesSequential) {
  ScenarioOptions o = small_options(false);
  Scenario sequential(o);
  o.executor_threads = 3;
  Scenario threaded(o);
  const ExperimentResult a = sequential.run(MappingKind::kHProf);
  const ExperimentResult b = threaded.run(MappingKind::kHProf);
  EXPECT_EQ(a.metrics.total_events, b.metrics.total_events);
  EXPECT_EQ(a.stats.num_windows, b.stats.num_windows);
  EXPECT_EQ(a.stats.events_per_lp, b.stats.events_per_lp);
  EXPECT_EQ(a.counters.forwarded, b.counters.forwarded);
  EXPECT_EQ(a.counters.flows_completed, b.counters.flows_completed);
  EXPECT_DOUBLE_EQ(a.metrics.simulation_time_s, b.metrics.simulation_time_s);
}

// ---- Failover / routing reconvergence --------------------------------------

namespace failover_detail {

// Diamond: h6 - r0 - {r1 fast | r2 slow} - r3 - h7. OSPF prefers r1.
Network diamond() {
  Network net;
  for (int i = 0; i < 4; ++i) {
    NetNode r;
    r.kind = NodeKind::kRouter;
    net.nodes.push_back(r);
  }
  net.num_routers = 4;
  for (int i = 0; i < 2; ++i) {
    NetNode h;
    h.kind = NodeKind::kHost;
    h.attach_router = i == 0 ? 0 : 3;
    net.nodes.push_back(h);
  }
  const auto link = [&](NodeId a, NodeId b, SimTime lat) {
    NetLink l;
    l.a = a;
    l.b = b;
    l.latency = lat;
    l.bandwidth_bps = 1e8;
    net.links.push_back(l);
  };
  link(0, 1, milliseconds(1));  // link 0: fast branch
  link(1, 3, milliseconds(1));  // link 1
  link(0, 2, milliseconds(5));  // link 2: slow branch
  link(2, 3, milliseconds(5));  // link 3
  link(0, 4, microseconds(10));
  link(3, 5, microseconds(10));
  net.build_adjacency();
  return net;
}

struct Rig {
  Rig() : net(diamond()), fp(ForwardingPlane::build_flat(net, {{0, 3}})) {
    EngineOptions eo;
    eo.lookahead = milliseconds(1);
    eo.end_time = seconds(120);
    engine = std::make_unique<Engine>(eo);
    sim = std::make_unique<NetSim>(net, fp,
                                   std::vector<LpId>{0, 0, 0, 0}, *engine,
                                   NetSimOptions{});
  }
  Network net;
  ForwardingPlane fp;
  std::unique_ptr<Engine> engine;
  std::unique_ptr<NetSim> sim;
};

}  // namespace failover_detail

TEST(Failover, ReroutesAroundFailedLink) {
  failover_detail::Rig rig;
  FailoverController ctl(rig.fp, /*convergence_delay=*/milliseconds(200));
  ctl.attach(*rig.engine);

  std::uint32_t completions = 0;
  SimTime completed_at = -1;
  rig.sim->set_flow_complete(
      [&](Engine& e, NetSim&, FlowId, NodeId, NodeId, std::uint32_t, bool) {
        ++completions;
        completed_at = e.now();
      });
  // OSPF initially prefers the fast branch; verify.
  EXPECT_EQ(rig.fp.next_link(0, 3), 0);

  ctl.fail_link(*rig.engine, *rig.sim, /*link=*/0, milliseconds(50));
  rig.sim->start_flow(*rig.engine, milliseconds(1), 4, 5, 2000000, 1);
  rig.engine->run();

  EXPECT_EQ(completions, 1u) << "flow must finish via the slow branch";
  EXPECT_EQ(ctl.reconvergences(), 1);
  EXPECT_GT(rig.sim->totals().dropped_link_down, 0u);
  EXPECT_EQ(rig.sim->totals().flows_failed, 0u);
  // After reconvergence the fast branch is withdrawn.
  EXPECT_EQ(rig.fp.next_link(0, 3), 2);
  EXPECT_GT(completed_at, milliseconds(250));
}

TEST(Failover, RestoreReturnsToPrimaryPath) {
  failover_detail::Rig rig;
  FailoverController ctl(rig.fp, milliseconds(100));
  ctl.attach(*rig.engine);
  ctl.fail_link(*rig.engine, *rig.sim, 0, milliseconds(10));
  ctl.restore_link(*rig.engine, *rig.sim, 0, seconds(2));
  std::uint32_t completions = 0;
  rig.sim->set_flow_complete(
      [&](Engine&, NetSim&, FlowId, NodeId, NodeId, std::uint32_t, bool) {
        ++completions;
      });
  // Keep traffic flowing across the whole episode.
  rig.sim->start_flow(*rig.engine, milliseconds(1), 4, 5, 1000000, 1);
  rig.sim->start_flow(*rig.engine, seconds(3), 4, 5, 1000000, 2);
  rig.engine->run();
  EXPECT_EQ(completions, 2u);
  EXPECT_EQ(ctl.reconvergences(), 2);
  EXPECT_EQ(rig.fp.next_link(0, 3), 0);  // primary restored
}

TEST(Failover, LinkDownRerouteRestoreBitIdenticalAcrossExecutors) {
  // The full kEvLinkState episode — down, OSPF reroute, back up, return to
  // the primary path — must be bit-identical under the sequential and
  // threaded executors: the data-plane change is an ordinary pre-scheduled
  // event and the control-plane change applies at a window barrier, which
  // falls at the same virtual time either way.
  struct Outcome {
    RunStats stats;
    NetSim::Counters counters;
    std::vector<SimTime> completion_times;
    LinkId final_next_link;
    std::int32_t reconvergences;
    bool operator==(const Outcome& o) const {
      return stats.total_events == o.stats.total_events &&
             stats.num_windows == o.stats.num_windows &&
             stats.events_per_lp == o.stats.events_per_lp &&
             counters.forwarded == o.counters.forwarded &&
             counters.dropped_link_down == o.counters.dropped_link_down &&
             counters.retransmits == o.counters.retransmits &&
             completion_times == o.completion_times &&
             final_next_link == o.final_next_link &&
             reconvergences == o.reconvergences;
    }
  };
  const auto run_once = [](bool threaded) {
    Network net = failover_detail::diamond();
    ForwardingPlane fp = ForwardingPlane::build_flat(net, {{0, 3}});
    EngineOptions eo;
    eo.lookahead = milliseconds(1);  // = min cross-LP latency (link 1-3)
    eo.end_time = seconds(120);
    Engine engine(eo);
    // Two LPs so the threaded executor actually runs in parallel.
    NetSim sim(net, fp, std::vector<LpId>{0, 0, 1, 1}, engine,
               NetSimOptions{});
    FailoverController ctl(fp, milliseconds(200));
    ctl.attach(engine);
    ctl.fail_link(engine, sim, /*link=*/0, milliseconds(50));
    ctl.restore_link(engine, sim, /*link=*/0, seconds(5));

    Outcome out;
    sim.set_flow_complete([&](Engine& e, NetSim&, FlowId, NodeId, NodeId,
                              std::uint32_t, bool) {
      out.completion_times.push_back(e.now());
    });
    sim.start_flow(engine, milliseconds(1), 4, 5, 2000000, 1);  // spans down
    sim.start_flow(engine, seconds(6), 4, 5, 1000000, 2);       // after up
    out.stats = threaded ? engine.run_threaded(2) : engine.run();
    out.counters = sim.totals();
    out.final_next_link = fp.next_link(0, 3);
    out.reconvergences = ctl.reconvergences();
    return out;
  };
  const Outcome seq = run_once(false);
  const Outcome thr = run_once(true);
  EXPECT_EQ(seq.completion_times.size(), 2u);
  EXPECT_EQ(seq.final_next_link, 0);  // primary path restored
  EXPECT_EQ(seq.reconvergences, 2);
  EXPECT_GT(seq.counters.dropped_link_down, 0u);
  EXPECT_TRUE(seq == thr) << "executors diverged on the failover episode";
}

TEST(Failover, ScenarioTrafficSurvivesBackboneFailure) {
  // Full-pipeline smoke test: fail a backbone link mid-run in a generated
  // network; traffic keeps completing after reconvergence.
  ScenarioOptions o = small_options(false);
  o.end_time = seconds(4);
  Scenario scenario(o);
  const Mapping m = scenario.mapping_for(MappingKind::kHProf);

  // Re-run the scenario manually so we can hook the failover in.
  EngineOptions eo;
  eo.lookahead = scenario.lookahead_for(m.router_lp);
  eo.end_time = o.end_time;
  Engine engine(eo);
  // The forwarding plane is shared/const inside Scenario, so copy the
  // construction here with a mutable one.
  std::vector<NodeId> dests;
  for (NodeId h : scenario.client_hosts()) {
    dests.push_back(scenario.network()
                        .nodes[static_cast<std::size_t>(h)]
                        .attach_router);
  }
  for (NodeId h : scenario.server_hosts()) {
    dests.push_back(scenario.network()
                        .nodes[static_cast<std::size_t>(h)]
                        .attach_router);
  }
  ForwardingPlane fp =
      ForwardingPlane::build_flat(scenario.network(), dests);
  NetSim sim(scenario.network(), fp, m.router_lp, engine, NetSimOptions{});
  TrafficManager manager(sim);
  HttpOptions ho;
  ho.think_time_mean_s = 0.2;
  manager.add(TrafficKind::kHttp,
              std::make_unique<HttpWorkload>(
                  std::vector<NodeId>(scenario.client_hosts().begin(),
                                      scenario.client_hosts().end()),
                  std::vector<NodeId>(scenario.server_hosts().begin(),
                                      scenario.server_hosts().end()),
                  ho));
  FailoverController ctl(fp, milliseconds(150));
  ctl.attach(engine);
  // Fail the first router-router link.
  for (LinkId l = 0; l < static_cast<LinkId>(scenario.network().links.size());
       ++l) {
    const NetLink& link = scenario.network().links[static_cast<std::size_t>(l)];
    if (scenario.network().is_router(link.a) &&
        scenario.network().is_router(link.b)) {
      ctl.fail_link(engine, sim, l, seconds(1));
      break;
    }
  }
  manager.start(engine, sim);
  engine.run();
  EXPECT_EQ(ctl.reconvergences(), 1);
  EXPECT_GT(sim.totals().flows_completed, 50u);
}

TEST(Report, FormatFigure) {
  std::vector<FigureRow> rows{{"ScaLapack", "HPROF", 1.5},
                              {"GridNPB", "TOP2", 2.25}};
  const std::string s = format_figure("Simulation Time", "sec", rows);
  EXPECT_NE(s.find("Simulation Time"), std::string::npos);
  EXPECT_NE(s.find("ScaLapack\tHPROF\t1.5"), std::string::npos);
}

TEST(Report, SummaryMentionsMapping) {
  Scenario scenario(small_options(false));
  const ExperimentResult r = scenario.run(MappingKind::kTop2);
  const std::string s = summarize(r);
  EXPECT_NE(s.find("TOP2"), std::string::npos);
  EXPECT_NE(s.find("PE="), std::string::npos);
}

TEST(ScenarioConfig, RoundTrip) {
  ScenarioOptions o;
  o.multi_as = true;
  o.num_routers = 1234;
  o.num_hosts = 567;
  o.num_as = 17;
  o.num_clients = 89;
  o.num_servers = 12;
  o.app = AppKind::kGridNpb;
  o.num_app_hosts = 21;
  o.num_engines = 33;
  o.end_time = from_seconds(7.5);
  o.profile_end_time = from_seconds(2.25);
  o.http.think_time_mean_s = 0.75;
  o.executor_threads = 2;
  o.sync = SyncMode::kBarrier;
  o.seed = 99;

  const DmlNode dml = scenario_options_to_dml(o);
  std::string error;
  const auto back = scenario_options_from_dml(dml, &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(back->multi_as, o.multi_as);
  EXPECT_EQ(back->num_routers, o.num_routers);
  EXPECT_EQ(back->num_hosts, o.num_hosts);
  EXPECT_EQ(back->num_as, o.num_as);
  EXPECT_EQ(back->num_clients, o.num_clients);
  EXPECT_EQ(back->app, AppKind::kGridNpb);
  EXPECT_EQ(back->num_engines, o.num_engines);
  EXPECT_EQ(back->end_time, o.end_time);
  EXPECT_DOUBLE_EQ(back->http.think_time_mean_s, 0.75);
  EXPECT_EQ(back->executor_threads, 2);
  EXPECT_EQ(back->sync, SyncMode::kBarrier);
  EXPECT_EQ(back->seed, 99u);
}

TEST(ScenarioConfig, TextRoundTripAndDefaults) {
  const auto parsed = parse_dml("Experiment [ routers 321 app gridnpb ]");
  ASSERT_TRUE(parsed.has_value());
  const auto o = scenario_options_from_dml(*parsed);
  ASSERT_TRUE(o.has_value());
  EXPECT_EQ(o->num_routers, 321);
  EXPECT_EQ(o->app, AppKind::kGridNpb);
  EXPECT_EQ(o->num_engines, ScenarioOptions{}.num_engines);  // default kept
}

TEST(ScenarioConfig, RejectsBadValues) {
  std::string error;
  auto parsed = parse_dml("Experiment [ app warp_drive ]");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(scenario_options_from_dml(*parsed, &error).has_value());
  EXPECT_NE(error.find("warp_drive"), std::string::npos);

  parsed = parse_dml("Experiment [ routers 0 ]");
  EXPECT_FALSE(scenario_options_from_dml(*parsed, &error).has_value());

  parsed = parse_dml("Experiment [ sync optimistic ]");
  EXPECT_FALSE(scenario_options_from_dml(*parsed, &error).has_value());
  EXPECT_NE(error.find("optimistic"), std::string::npos);

  parsed = parse_dml("Other [ ]");
  EXPECT_FALSE(scenario_options_from_dml(*parsed, &error).has_value());
}

TEST(ScenarioConfig, MappingKindNames) {
  EXPECT_EQ(mapping_kind_from_name("HPROF"), MappingKind::kHProf);
  EXPECT_EQ(mapping_kind_from_name("GREEDY"), MappingKind::kGreedy);
  EXPECT_EQ(mapping_kind_from_name("PLACE"), MappingKind::kPlace);
  EXPECT_FALSE(mapping_kind_from_name("nope").has_value());
}

TEST(PaperPresets, FullScaleShapes) {
  const ScenarioOptions single = paper_full_scale_single_as();
  EXPECT_EQ(single.num_routers, 20000);
  EXPECT_EQ(single.num_engines, 90);
  EXPECT_FALSE(single.multi_as);
  const ScenarioOptions multi = paper_full_scale_multi_as();
  EXPECT_TRUE(multi.multi_as);
  EXPECT_EQ(multi.num_as, 100);
}

}  // namespace
}  // namespace massf
