#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <thread>

#include "net/netsim.hpp"
#include "online/agent.hpp"
#include "online/vsocket.hpp"
#include "routing/forwarding.hpp"
#include "topology/brite.hpp"
#include "traffic/manager.hpp"

namespace massf {
namespace {

struct Fixture {
  explicit Fixture(const AgentOptions& ao = AgentOptions{},
                   SimTime end = seconds(30),
                   const NetSimOptions& no = NetSimOptions{}) {
    BriteOptions o;
    o.num_routers = 30;
    o.num_hosts = 6;
    o.seed = 41;
    net = generate_flat(o);
    std::vector<NodeId> dests;
    for (NodeId h = net.num_routers;
         h < static_cast<NodeId>(net.nodes.size()); ++h) {
      hosts.push_back(h);
      dests.push_back(net.nodes[static_cast<std::size_t>(h)].attach_router);
    }
    fp = std::make_unique<ForwardingPlane>(
        ForwardingPlane::build_flat(net, dests));
    EngineOptions eo;
    eo.lookahead = microseconds(200);
    eo.end_time = end;
    engine = std::make_unique<Engine>(eo);
    const std::vector<LpId> map(static_cast<std::size_t>(net.num_routers), 0);
    sim = std::make_unique<NetSim>(net, *fp, map, *engine, no);
    manager = std::make_unique<TrafficManager>(*sim);
    auto agent_ptr = std::make_unique<Agent>(ao);
    agent = agent_ptr.get();
    manager->add(TrafficKind::kOnline, std::move(agent_ptr));
    agent->attach(*engine);
    manager->start(*engine, *sim);
    // Keep the engine alive even with no scripted traffic: a heartbeat
    // timer chain (the online layer needs windows to keep opening).
    sim->set_app_timer([](Engine& e, NetSim& s, NodeId host, std::uint64_t b,
                          std::uint64_t c) {
      if (b == make_timer(TrafficKind::kNone, 1)) {
        s.schedule_app_timer(e, host, e.now() + milliseconds(10), b, c);
      }
    });
    sim->schedule_app_timer(*engine, hosts[0], milliseconds(1),
                            make_timer(TrafficKind::kNone, 1));
  }

  /// The access link attaching `host` (for outage injection).
  LinkId access_link(NodeId host) const {
    for (LinkId l = 0; l < static_cast<LinkId>(net.links.size()); ++l) {
      if (net.links[static_cast<std::size_t>(l)].a == host ||
          net.links[static_cast<std::size_t>(l)].b == host) {
        return l;
      }
    }
    return kInvalidLink;
  }

  Network net;
  std::unique_ptr<ForwardingPlane> fp;
  std::vector<NodeId> hosts;
  std::unique_ptr<Engine> engine;
  std::unique_ptr<NetSim> sim;
  std::unique_ptr<TrafficManager> manager;
  Agent* agent = nullptr;
};

TEST(Agent, PreQueuedSendDelivered) {
  Fixture f;
  Agent::SendRequest req;
  req.src_host = f.hosts[0];
  req.dst_host = f.hosts[1];
  req.bytes = 50000;
  req.cookie = 99;
  f.agent->submit(req);
  f.engine->run();
  const auto d = f.agent->poll();
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->cookie, 99u);
  EXPECT_EQ(d->src_host, f.hosts[0]);
  EXPECT_EQ(d->dst_host, f.hosts[1]);
  EXPECT_GT(d->virtual_time, 0);
}

TEST(Agent, LiveInjectionFromAnotherThread) {
  // Unbounded horizon: the run ends via request_stop() only. With a finite
  // horizon the engine can exhaust it before this thread is scheduled at
  // all (single-core machines), and a submit after the run hangs forever.
  Fixture f(AgentOptions{}, seconds(1000000));
  std::thread app([&] {
    // Wait until the engine has advanced, then inject live.
    while (f.agent->virtual_now() < milliseconds(50)) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    Agent::SendRequest req;
    req.src_host = f.hosts[2];
    req.dst_host = f.hosts[3];
    req.bytes = 20000;
    req.cookie = 7;
    f.agent->submit(req);
    // Wait for the delivery, then stop the engine.
    for (;;) {
      if (auto d = f.agent->poll()) {
        EXPECT_EQ(d->cookie, 7u);
        EXPECT_GT(d->virtual_time, milliseconds(50));
        break;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    f.engine->request_stop();
  });
  f.engine->run();
  app.join();
}

TEST(Agent, MultipleSendsAllComplete) {
  Fixture f;
  for (std::uint32_t i = 0; i < 5; ++i) {
    Agent::SendRequest req;
    req.src_host = f.hosts[i % 3];
    req.dst_host = f.hosts[3 + i % 2];
    req.bytes = 10000 + i * 1000;
    req.cookie = i;
    f.agent->submit(req);
  }
  f.engine->run();
  std::set<std::uint32_t> cookies;
  while (auto d = f.agent->poll()) cookies.insert(d->cookie);
  EXPECT_EQ(cookies.size(), 5u);
}

TEST(VSocket, SendReceiveRoundTrip) {
  // Unbounded horizon, as in LiveInjectionFromAnotherThread: receive()'s
  // wall deadline only works while the engine is still opening windows.
  Fixture f(AgentOptions{}, seconds(1000000));
  VSocket sender(*f.agent, f.hosts[0]);
  VSocket receiver(*f.agent, f.hosts[1]);

  std::thread app([&] {
    const std::uint32_t cookie = sender.send(f.hosts[1], 30000);
    const auto d = receiver.receive(/*wall_timeout_s=*/20.0);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->cookie, cookie);
    EXPECT_EQ(d->dst_host, f.hosts[1]);
    f.engine->request_stop();
  });
  f.engine->run();
  app.join();
}

TEST(Agent, RetryRecoversFromTransientOutage) {
  // The destination's access link is down when the transfer starts; TCP
  // abandons, the Agent retries with backoff, and a retry issued after the
  // restoration succeeds — the application sees one ordinary delivery.
  NetSimOptions no;
  no.tcp_max_consecutive_timeouts = 3;  // abandon after ~7 s of silence
  Fixture f(AgentOptions{}, seconds(60), no);
  const LinkId down = f.access_link(f.hosts[1]);
  ASSERT_NE(down, kInvalidLink);
  f.sim->link_model().schedule_link_state(*f.engine, down, milliseconds(1), false);
  f.sim->link_model().schedule_link_state(*f.engine, down, seconds(10), true);

  Agent::SendRequest req;
  req.src_host = f.hosts[0];
  req.dst_host = f.hosts[1];
  req.bytes = 20000;
  req.cookie = 42;
  f.agent->submit(req);
  f.engine->run();

  const auto d = f.agent->poll();
  ASSERT_TRUE(d.has_value());
  EXPECT_FALSE(d->failed);
  EXPECT_EQ(d->cookie, 42u);
  EXPECT_GT(d->virtual_time, seconds(10));  // after the restoration
  EXPECT_GE(f.agent->retries(), 1u);
  EXPECT_EQ(f.agent->requests_failed(), 0u);
}

TEST(Agent, DegradedModeAfterPermanentOutage) {
  // Path never comes back: retries exhaust, the degraded callback fires at
  // a barrier, and the application receives an explicit failed delivery.
  NetSimOptions no;
  no.tcp_max_consecutive_timeouts = 3;
  AgentOptions ao;
  ao.max_retries = 1;
  ao.retry_backoff_s = 0.5;
  Fixture f(ao, seconds(60), no);
  const LinkId down = f.access_link(f.hosts[1]);
  f.sim->link_model().schedule_link_state(*f.engine, down, milliseconds(1), false);

  std::uint32_t degraded_calls = 0;
  std::uint32_t degraded_cookie = 0;
  f.agent->set_degraded([&](const Agent::SendRequest& r, SimTime at) {
    ++degraded_calls;
    degraded_cookie = r.cookie;
    EXPECT_GT(at, 0);
  });

  Agent::SendRequest req;
  req.src_host = f.hosts[0];
  req.dst_host = f.hosts[1];
  req.bytes = 20000;
  req.cookie = 17;
  f.agent->submit(req);
  f.engine->run();

  const auto d = f.agent->poll();
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->failed);
  EXPECT_EQ(d->cookie, 17u);
  EXPECT_EQ(degraded_calls, 1u);
  EXPECT_EQ(degraded_cookie, 17u);
  EXPECT_EQ(f.agent->retries(), 1u);
  EXPECT_EQ(f.agent->requests_failed(), 1u);
  EXPECT_FALSE(f.agent->poll().has_value());  // exactly one delivery
}

TEST(Agent, SlowdownPacesVirtualTime) {
  // With slowdown 2 and ~100 ms of virtual time, the run must take at
  // least ~0.2 s of wall clock.
  AgentOptions ao;
  ao.slowdown = 2.0;
  Fixture f(ao, milliseconds(100));
  const auto start = std::chrono::steady_clock::now();
  f.engine->run();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_GE(wall, 0.15);
}

}  // namespace
}  // namespace massf
