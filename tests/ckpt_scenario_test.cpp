// End-to-end checkpoint/restore over the real simulation stacks.
//
// Two drivers are exercised, mirroring how checkpoints are taken in
// production runs:
//
//  * Scenario: the experiment facade's own orchestration (CkptOptions /
//    set_ckpt) — a run checkpoints to a file and stops, a second run on the
//    same Scenario restores from the file, and the resumed run's
//    ExperimentResult and probe rows must equal the uninterrupted run's,
//    under both executors.
//
//  * The chaos stack (NetSim + dynamic BGP + FaultInjector, as in
//    bench/chaos_beacon.cpp): the checkpoint is taken mid-outage — after a
//    router crash, before its restore, with a BGP session flapping — so the
//    snapshot carries non-trivial routing state (down-links, RIBs and
//    session epochs, pending reconvergence entries) and the resumed run
//    must still finish with bit-identical RunStats, fault reconvergence
//    records, and massf.metrics.v1 JSON.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "ckpt/ckpt.hpp"
#include "fault/injector.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/probe.hpp"
#include "sim/scenario.hpp"
#include "topology/mabrite.hpp"
#include "traffic/http.hpp"
#include "traffic/manager.hpp"

namespace massf {
namespace {

std::uint64_t double_bits(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

void expect_same_stats(const RunStats& a, const RunStats& b) {
  EXPECT_EQ(a.total_events, b.total_events);
  EXPECT_EQ(a.num_windows, b.num_windows);
  EXPECT_EQ(a.events_per_lp, b.events_per_lp);
  EXPECT_EQ(a.end_vtime, b.end_vtime);
  EXPECT_EQ(a.cross_lp_events, b.cross_lp_events);
  EXPECT_EQ(a.merge_batches, b.merge_batches);
  EXPECT_EQ(double_bits(a.modeled_wall_s), double_bits(b.modeled_wall_s));
  EXPECT_EQ(double_bits(a.modeled_sync_s), double_bits(b.modeled_sync_s));
  ASSERT_EQ(a.busy_s.size(), b.busy_s.size());
  for (std::size_t i = 0; i < a.busy_s.size(); ++i) {
    EXPECT_EQ(double_bits(a.busy_s[i]), double_bits(b.busy_s[i])) << i;
  }
}

void expect_same_counters(const NetSim::Counters& a,
                          const NetSim::Counters& b) {
  EXPECT_EQ(a.forwarded, b.forwarded);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.acks, b.acks);
  EXPECT_EQ(a.dropped_queue, b.dropped_queue);
  EXPECT_EQ(a.dropped_no_route, b.dropped_no_route);
  EXPECT_EQ(a.dropped_link_down, b.dropped_link_down);
  EXPECT_EQ(a.dropped_node_down, b.dropped_node_down);
  EXPECT_EQ(a.dropped_loss, b.dropped_loss);
  EXPECT_EQ(a.app_timers_dropped, b.app_timers_dropped);
  EXPECT_EQ(a.retransmits, b.retransmits);
  EXPECT_EQ(a.flows_started, b.flows_started);
  EXPECT_EQ(a.flows_completed, b.flows_completed);
  EXPECT_EQ(a.flows_failed, b.flows_failed);
  EXPECT_EQ(a.udp_delivered, b.udp_delivered);
}

void expect_same_probe_rows(const obs::WindowProbe& a,
                            const obs::WindowProbe& b) {
  ASSERT_EQ(a.windows().size(), b.windows().size());
  for (std::size_t i = 0; i < a.windows().size(); ++i) {
    const obs::WindowProbe::Window& wa = a.windows()[i];
    const obs::WindowProbe::Window& wb = b.windows()[i];
    EXPECT_EQ(wa.index, wb.index) << i;
    EXPECT_EQ(double_bits(wa.start_vtime_s), double_bits(wb.start_vtime_s))
        << i;
    EXPECT_EQ(wa.events, wb.events) << i;
    EXPECT_EQ(wa.max_lp_events, wb.max_lp_events) << i;
    EXPECT_EQ(wa.queue_depth, wb.queue_depth) << i;
    EXPECT_EQ(wa.outbox, wb.outbox) << i;
    EXPECT_EQ(wa.outbox_batches, wb.outbox_batches) << i;
  }
}

// ---- Scenario orchestration -------------------------------------------------

ScenarioOptions tiny_options() {
  ScenarioOptions o;
  o.multi_as = false;
  o.num_routers = 160;
  o.num_hosts = 80;
  o.num_clients = 24;
  o.num_servers = 8;
  o.num_engines = 4;
  o.app = AppKind::kScaLapack;
  o.num_app_hosts = 9;
  o.end_time = seconds(2);
  o.profile_end_time = seconds(1);
  o.http.think_time_mean_s = 0.4;
  o.seed = 17;
  return o;
}

class ScenarioCkpt : public ::testing::TestWithParam<int> {};

TEST_P(ScenarioCkpt, RestoredRunMatchesUninterrupted) {
  const std::int32_t threads = GetParam();
  const std::string path = ::testing::TempDir() + "/scenario_t" +
                           std::to_string(threads) + ".ckpt";

  ScenarioOptions base = tiny_options();
  base.executor_threads = threads;

  // Uninterrupted reference run.
  obs::WindowProbe probe_ref;
  ScenarioOptions oref = base;
  oref.probe = &probe_ref;
  Scenario ref(oref);
  const ExperimentResult want = ref.run(MappingKind::kTop2);

  // Interrupted then resumed, on one Scenario (same topology and hosts).
  obs::WindowProbe probe_res;
  ScenarioOptions ores = base;
  ores.probe = &probe_res;
  Scenario resumed(ores);
  CkptOptions save;
  save.every_windows = 40;
  save.path = path;
  save.stop_after = true;
  resumed.set_ckpt(save);
  const ExperimentResult cut = resumed.run(MappingKind::kTop2);
  ASSERT_EQ(cut.stats.num_windows, 40u);  // stopped at the snapshot boundary
  ASSERT_LT(cut.stats.num_windows, want.stats.num_windows);

  CkptOptions load;
  load.restore_path = path;
  resumed.set_ckpt(load);
  const ExperimentResult got = resumed.run(MappingKind::kTop2);

  expect_same_stats(want.stats, got.stats);
  expect_same_counters(want.counters, got.counters);
  EXPECT_EQ(double_bits(want.metrics.simulation_time_s),
            double_bits(got.metrics.simulation_time_s));
  EXPECT_EQ(want.metrics.total_events, got.metrics.total_events);
  expect_same_probe_rows(probe_ref, probe_res);
}

INSTANTIATE_TEST_SUITE_P(Executors, ScenarioCkpt, ::testing::Values(0, 3));

// ---- chaos stack ------------------------------------------------------------

/// First intra-AS router-router link of `as` (fault targets), as in
/// bench/chaos_beacon.cpp.
LinkId intra_as_link(const Network& net, AsId as, LinkId not_this = -1) {
  for (LinkId l = 0; l < static_cast<LinkId>(net.links.size()); ++l) {
    const NetLink& link = net.links[static_cast<std::size_t>(l)];
    if (l != not_this && !link.inter_as && net.is_router(link.a) &&
        net.is_router(link.b) &&
        net.nodes[static_cast<std::size_t>(link.a)].as_id == as) {
      return l;
    }
  }
  ADD_FAILURE() << "no intra-AS router link in AS " << as;
  return 0;
}

// A fully armed chaos stack: multi-AS network, dynamic BGP speakers with a
// beacon, background HTTP, and a scripted fault scenario whose router
// crash spans the checkpoint instant.
struct ChaosStack {
  ChaosStack() {
    MaBriteOptions mo;
    mo.num_as = 5;
    mo.routers_per_as = 4;
    mo.num_hosts = 30;
    mo.seed = 5;
    net = generate_multi_as(mo);
    const auto num_plain_hosts =
        static_cast<NodeId>(net.nodes.size()) - net.num_routers;
    const std::vector<NodeId> speaker_hosts = add_bgp_speaker_hosts(net);

    std::vector<NodeId> dests;
    for (NodeId h = net.num_routers;
         h < static_cast<NodeId>(net.nodes.size()); ++h) {
      dests.push_back(net.nodes[static_cast<std::size_t>(h)].attach_router);
    }
    fp = std::make_unique<ForwardingPlane>(
        ForwardingPlane::build_multi_as(net, dests));

    std::vector<LpId> map(static_cast<std::size_t>(net.num_routers), 0);
    for (NodeId r = 0; r < net.num_routers; ++r) {
      map[static_cast<std::size_t>(r)] =
          net.nodes[static_cast<std::size_t>(r)].as_id % 2;
    }
    SimTime lookahead = kSimTimeMax;
    for (const NetLink& l : net.links) {
      if (net.is_router(l.a) && net.is_router(l.b) &&
          map[static_cast<std::size_t>(l.a)] !=
              map[static_cast<std::size_t>(l.b)]) {
        lookahead = std::min(lookahead, l.latency);
      }
    }

    EngineOptions eo;
    eo.lookahead = lookahead;
    eo.end_time = seconds(20);
    engine = std::make_unique<Engine>(eo);
    sim = std::make_unique<NetSim>(net, *fp, map, *engine, NetSimOptions{});
    manager = std::make_unique<TrafficManager>(*sim);

    auto speakers_owned = std::make_unique<BgpSpeakers>(net, speaker_hosts,
                                                        BgpDynamicOptions{});
    speakers = speakers_owned.get();
    manager->add(TrafficKind::kBgp, std::move(speakers_owned));

    std::vector<NodeId> clients, servers;
    for (NodeId i = 0; i < num_plain_hosts; ++i) {
      const NodeId h = net.num_routers + i;
      (i % 4 == 0 ? servers : clients).push_back(h);
    }
    HttpOptions ho;
    ho.think_time_mean_s = 0.5;
    manager->add(TrafficKind::kHttp,
                 std::make_unique<HttpWorkload>(clients, servers, ho));

    const AsId beacon_as = net.num_as() - 1;
    speakers->schedule_beacon(*engine, *sim, beacon_as, seconds(5),
                              seconds(6), /*toggles=*/2);

    // Crash at 8 s, restore at 16 s: the checkpoint below is taken at the
    // first boundary past 10 s, inside the outage and before the pending
    // restore fault — the snapshot must carry the down-links, the
    // controller's queued reconvergence, and mid-churn BGP state.
    const LinkId flap_link = intra_as_link(net, 0);
    const LinkId loss_link = intra_as_link(net, 0, flap_link);
    const NodeId crash_router =
        net.as_info[1].first_router +
        (net.as_info[1].num_routers > 1 ? 1 : 0);
    const AsAdjacency& adj = net.as_adjacency.front();
    char scenario[512];
    std::snprintf(scenario, sizeof scenario,
                  "at 6 flap link=%d count=2 period=2 downtime=0.5\n"
                  "at 7 loss link=%d duration=2 rate=0.05\n"
                  "at 8 crash router=%d\n"
                  "at 16 restore router=%d\n"
                  "at 12 bgp_reset as=%d peer=%d downtime=2\n",
                  flap_link, loss_link, crash_router, crash_router, adj.as_a,
                  adj.as_b);
    std::string parse_error;
    const auto schedule = parse_fault_schedule(scenario, &parse_error);
    if (!schedule) {
      ADD_FAILURE() << "scenario parse error: " << parse_error;
      std::abort();
    }

    injector = std::make_unique<FaultInjector>(net, *fp);
    injector->set_bgp(speakers);
    injector->arm(*engine, *sim, *schedule);

    manager->start(*engine, *sim);
  }

  ckpt::Participants participants() {
    ckpt::Participants parts;
    parts.add(
        "engine",
        [this](ckpt::Writer& w) { engine->save_state(w); },
        [this](ckpt::Reader& r) { return engine->restore_state(r); });
    parts.add("net", [this](ckpt::Writer& w) { sim->save(w); },
              [this](ckpt::Reader& r) { return sim->load(r); });
    parts.add(
        "traffic", [this](ckpt::Writer& w) { manager->save(w); },
        [this](ckpt::Reader& r) { return manager->load(r); });
    parts.add(
        "routing.fp", [this](ckpt::Writer& w) { fp->save(w); },
        [this](ckpt::Reader& r) { return fp->load(r); });
    parts.add(
        "fault", [this](ckpt::Writer& w) { injector->save(w); },
        [this](ckpt::Reader& r) { return injector->load(r); });
    return parts;
  }

  RunStats run(std::int32_t threads) {
    return threads > 0 ? engine->run_threaded(threads) : engine->run();
  }

  std::string metrics_json() const {
    obs::Registry registry;
    sim->publish_metrics(registry);
    manager->publish_metrics(registry);
    injector->publish_metrics(registry);
    return obs::to_json(registry);
  }

  Network net;
  std::unique_ptr<ForwardingPlane> fp;
  std::unique_ptr<Engine> engine;
  std::unique_ptr<NetSim> sim;
  std::unique_ptr<TrafficManager> manager;
  BgpSpeakers* speakers = nullptr;
  std::unique_ptr<FaultInjector> injector;
};

class ChaosCkpt : public ::testing::TestWithParam<int> {};

TEST_P(ChaosCkpt, MidOutageRestoreMatchesUninterrupted) {
  const std::int32_t threads = GetParam();

  ChaosStack ref;
  const RunStats want = ref.run(threads);
  const std::string want_json = ref.metrics_json();

  // Interrupted run: snapshot at the first window boundary past 10 s.
  ChaosStack cut;
  ckpt::Participants cut_parts = cut.participants();
  std::vector<std::uint8_t> image;
  cut.engine->set_ckpt_hook(
      1, [&cut_parts, &image](Engine& eng, SimTime floor) {
        if (!image.empty() || floor < seconds(10)) return;
        ckpt::Checkpoint ck;
        cut_parts.save(ck);
        image = ck.serialize();
        eng.request_stop();
      });
  const RunStats cut_stats = cut.run(threads);
  ASSERT_FALSE(image.empty());
  ASSERT_LT(cut_stats.num_windows, want.num_windows);

  std::string error;
  const auto parsed =
      ckpt::Checkpoint::parse(image.data(), image.size(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;

  ChaosStack resumed;
  ASSERT_TRUE(resumed.participants().restore(*parsed, &error)) << error;
  const RunStats got = resumed.run(threads);

  expect_same_stats(want, got);
  expect_same_counters(ref.sim->totals(), resumed.sim->totals());
  EXPECT_EQ(want_json, resumed.metrics_json());
  ASSERT_EQ(ref.injector->ospf_reconvergence_s().size(),
            resumed.injector->ospf_reconvergence_s().size());
  for (std::size_t i = 0; i < ref.injector->ospf_reconvergence_s().size();
       ++i) {
    EXPECT_EQ(double_bits(ref.injector->ospf_reconvergence_s()[i]),
              double_bits(resumed.injector->ospf_reconvergence_s()[i]))
        << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Executors, ChaosCkpt, ::testing::Values(0, 2));

}  // namespace
}  // namespace massf
