// Campaign parsing, expansion, the result.kv wire format, the roll-up
// JSON, and the worker-count determinism contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/golden.hpp"
#include "campaign/report.hpp"
#include "campaign/runner.hpp"

namespace massf {
namespace {

constexpr const char* kTinyBase =
    "  Experiment [\n"
    "    routers 60\n"
    "    hosts 40\n"
    "    clients 10\n"
    "    servers 4\n"
    "    app none\n"
    "    engines 4\n"
    "    seconds 0.4\n"
    "    profile_seconds 0.2\n"
    "  ]\n";

std::string parse_error(const std::string& text) {
  std::string error;
  EXPECT_FALSE(parse_campaign(text, &error).has_value()) << text;
  return error;
}

// Strips the trailing "timing" section — everything above it is the
// deterministic part of the roll-up.
std::string canonical_rollup(const std::string& json) {
  const auto pos = json.find("  \"timing\"");
  EXPECT_NE(pos, std::string::npos);
  return json.substr(0, pos);
}

// ---- parser error matrix ---------------------------------------------------

TEST(Campaign, ErrorMatrix) {
  const struct {
    std::string text;
    std::string error;
  } kCases[] = {
      {"Experiment [ routers 60 ]", "missing top-level Campaign [ ] block"},
      {"Campaign [\n  turbo 1\n]",
       "line 2: unknown key 'turbo' in Campaign (prefix with x_ to ignore)"},
      {"Campaign [\n" + std::string(kTinyBase) +
           "  sweep [\n    flavor mild\n  ]\n]",
       "line 13: unknown sweep axis 'flavor' (seed|sync|threads|shards|"
       "mapping|override)"},
      {"Campaign [\n" + std::string(kTinyBase) +
           "  sweep [\n    seed minus\n  ]\n]",
       "line 13: 'seed' wants a non-negative integer, got 'minus'"},
      {"Campaign [\n" + std::string(kTinyBase) +
           "  sweep [\n    override [ rebalance [ enabled 1 ] ]\n  ]\n]",
       "line 13: override entries must be scalar (use dotted keys for "
       "sub-blocks)"},
      {"Campaign [\n" + std::string(kTinyBase) + "  scenario a.dml\n]",
       "line 12: both `scenario` and an embedded Experiment [ ] block given"},
      {"Campaign [\n  scenario missing.dml\n]",
       "line 2: cannot open scenario 'missing.dml'"},
      {"Campaign [\n" + std::string(kTinyBase) + "  workers 0\n]",
       "line 12: 'workers' must be an integer >= 1"},
      {"Campaign [\n  name empty\n]",
       "missing a base scenario (`scenario` file or an embedded Experiment "
       "[ ] block)"},
  };
  for (const auto& c : kCases) {
    EXPECT_EQ(parse_error(c.text), c.error) << c.text;
  }
}

// A bad value on a sweep axis surfaces through the strict scenario
// re-parse, carrying the campaign file's line number.
TEST(Campaign, BadAxisValueIsLineNumbered) {
  const std::string error = parse_error(
      "Campaign [\n" + std::string(kTinyBase) +
      "  sweep [\n    sync warp\n  ]\n]");
  EXPECT_EQ(error, "line 13: unknown sync 'warp' (barrier|channel)");
}

TEST(Campaign, OverrideTypoIsLineNumbered) {
  const std::string error = parse_error(
      "Campaign [\n" + std::string(kTinyBase) +
      "  sweep [\n    override [ routres 80 ]\n  ]\n]");
  EXPECT_EQ(error,
            "line 13: unknown key 'routres' in Experiment (prefix with x_ "
            "to ignore)");
}

// ---- expansion -------------------------------------------------------------

TEST(Campaign, ExpansionOrderAndIds) {
  std::string error;
  const auto spec = parse_campaign(
      "Campaign [\n" + std::string(kTinyBase) +
          "  sweep [\n"
          "    seed 1\n    seed 2\n"
          "    sync barrier\n    sync channel\n"
          "  ]\n]",
      &error);
  ASSERT_TRUE(spec.has_value()) << error;
  ASSERT_EQ(spec->runs.size(), 4u);
  // sync is the outer axis, seed the inner one.
  EXPECT_EQ(spec->runs[0].id, "sync=barrier,seed=1");
  EXPECT_EQ(spec->runs[1].id, "sync=barrier,seed=2");
  EXPECT_EQ(spec->runs[2].id, "sync=channel,seed=1");
  EXPECT_EQ(spec->runs[3].id, "sync=channel,seed=2");
  EXPECT_EQ(spec->runs[2].spec.options.sync, SyncMode::kChannel);
  EXPECT_EQ(spec->runs[3].spec.options.seed, 2u);
}

TEST(Campaign, NoAxesYieldsSingleBaseRun) {
  std::string error;
  const auto spec =
      parse_campaign("Campaign [\n" + std::string(kTinyBase) + "]", &error);
  ASSERT_TRUE(spec.has_value()) << error;
  ASSERT_EQ(spec->runs.size(), 1u);
  EXPECT_EQ(spec->runs[0].id, "base");
  EXPECT_TRUE(spec->runs[0].axis.empty());
}

TEST(Campaign, OverrideAxisMergesAndTags) {
  std::string error;
  const auto spec = parse_campaign(
      "Campaign [\n" + std::string(kTinyBase) +
          "  sweep [\n"
          "    override [ tag small  routers 80  rebalance.enabled 1 ]\n"
          "    override [ tag wide  routers 200 ]\n"
          "    seed 7\n"
          "  ]\n]",
      &error);
  ASSERT_TRUE(spec.has_value()) << error;
  ASSERT_EQ(spec->runs.size(), 2u);
  EXPECT_EQ(spec->runs[0].id, "override=small,seed=7");
  EXPECT_EQ(spec->runs[0].spec.options.num_routers, 80);
  EXPECT_TRUE(spec->runs[0].spec.options.rebalance.enabled);
  EXPECT_EQ(spec->runs[1].id, "override=wide,seed=7");
  EXPECT_EQ(spec->runs[1].spec.options.num_routers, 200);
  EXPECT_FALSE(spec->runs[1].spec.options.rebalance.enabled);
  EXPECT_EQ(spec->runs[1].spec.options.seed, 7u);
}

// Golden rows: one per distinct (sync, threads) in the expansion,
// appended after all scenario rows.
TEST(Campaign, GoldenRowsPerSyncThreadsCombination) {
  std::string error;
  const auto spec = parse_campaign(
      "Campaign [\n  golden 1\n" + std::string(kTinyBase) +
          "  sweep [\n"
          "    sync barrier\n    sync channel\n"
          "    threads 0\n    threads 2\n"
          "    seed 1\n    seed 2\n"
          "  ]\n]",
      &error);
  ASSERT_TRUE(spec.has_value()) << error;
  // 2 sync x 2 threads x 2 seeds scenario rows + 4 golden rows.
  ASSERT_EQ(spec->runs.size(), 12u);
  std::vector<std::string> golden_ids;
  for (const auto& run : spec->runs) {
    if (run.golden) golden_ids.push_back(run.id);
  }
  EXPECT_EQ(golden_ids,
            (std::vector<std::string>{
                "golden[sync=barrier,threads=0]",
                "golden[sync=barrier,threads=2]",
                "golden[sync=channel,threads=0]",
                "golden[sync=channel,threads=2]"}));
  // All golden rows trail the scenario rows.
  EXPECT_FALSE(spec->runs[7].golden);
  EXPECT_TRUE(spec->runs[8].golden);
}

// ---- run directories + wire format -----------------------------------------

TEST(Campaign, RunDirNameIsShellSafe) {
  CampaignRun run;
  run.id = "golden[sync=barrier,threads=2]";
  EXPECT_EQ(run_dir_name(7, run), "007-golden_sync_barrier_threads_2_");
}

TEST(Campaign, RunRecordKvRoundTrip) {
  RunRecord rec;
  rec.id = "sync=channel,seed=2";
  rec.axis = {{"sync", "channel"}, {"seed", "2"}};
  rec.ok = true;
  rec.mapping = "HPROF";
  rec.events = 123456;
  rec.windows = 77;
  rec.modeled_time_s = 0.4;
  rec.load_imbalance = 1.25;
  rec.parallel_efficiency = 0.8;
  rec.mll_ms = 12.5;
  rec.faults_injected = 3;
  rec.wall_s = 1.5;

  RunRecord back;
  std::string error;
  ASSERT_TRUE(run_record_from_kv(run_record_to_kv(rec), &back, &error))
      << error;
  EXPECT_EQ(back.id, rec.id);
  ASSERT_EQ(back.axis.size(), 2u);
  EXPECT_EQ(back.axis[1].axis, "seed");
  EXPECT_EQ(back.axis[1].label, "2");
  EXPECT_TRUE(back.ok);
  EXPECT_EQ(back.mapping, "HPROF");
  EXPECT_EQ(back.events, rec.events);
  EXPECT_EQ(back.windows, rec.windows);
  EXPECT_DOUBLE_EQ(back.modeled_time_s, rec.modeled_time_s);
  EXPECT_DOUBLE_EQ(back.load_imbalance, rec.load_imbalance);
  EXPECT_DOUBLE_EQ(back.parallel_efficiency, rec.parallel_efficiency);
  EXPECT_DOUBLE_EQ(back.mll_ms, rec.mll_ms);
  EXPECT_EQ(back.faults_injected, 3u);
  EXPECT_DOUBLE_EQ(back.wall_s, 1.5);

  RunRecord failed;
  failed.id = "x";
  failed.ok = false;
  failed.error = "multi\nline\tdiagnostic";
  ASSERT_TRUE(run_record_from_kv(run_record_to_kv(failed), &back, &error))
      << error;
  EXPECT_FALSE(back.ok);
  EXPECT_EQ(back.error, "multi line diagnostic");

  EXPECT_FALSE(run_record_from_kv("id\tx\n", &back, &error));
  EXPECT_EQ(error, "result.kv has no `ok` line");
}

// ---- execution + determinism ----------------------------------------------

TEST(Campaign, GoldenRowReproducesPinnedChecksum) {
  std::string error;
  const auto spec = parse_campaign(
      "Campaign [\n  golden 1\n" + std::string(kTinyBase) + "]", &error);
  ASSERT_TRUE(spec.has_value()) << error;
  ASSERT_EQ(spec->runs.size(), 2u);
  ASSERT_TRUE(spec->runs[1].golden);

  const RunRecord rec = execute_run(spec->runs[1], "");
  ASSERT_TRUE(rec.ok) << rec.error;
  ASSERT_TRUE(rec.has_checksum);
  EXPECT_EQ(rec.checksum, kGoldenRingChecksum);
  EXPECT_EQ(rec.events, kGoldenRingEvents);
  EXPECT_EQ(rec.windows, kGoldenRingWindows);
}

// The contract the nightly job gates on: the same campaign, run with 1
// in-process worker, again with 1, and with 4, produces byte-identical
// roll-ups once the trailing "timing" section is stripped.
TEST(Campaign, RollupIsBitIdenticalAcrossWorkerCounts) {
  std::string error;
  const auto spec = parse_campaign(
      "Campaign [\n  name determinism\n  golden 1\n" +
          std::string(kTinyBase) +
          "  sweep [\n"
          "    seed 2\n    seed 3\n"
          "    sync barrier\n    sync channel\n"
          "  ]\n]",
      &error);
  ASSERT_TRUE(spec.has_value()) << error;
  ASSERT_EQ(spec->runs.size(), 6u);  // 4 scenario + 2 golden (per sync)

  auto rollup = [&](std::int32_t workers) {
    CampaignExecOptions opts;
    opts.workers = workers;
    const CampaignOutcome outcome = run_campaign(*spec, opts);
    for (const RunRecord& rec : outcome.runs) {
      EXPECT_TRUE(rec.ok) << rec.id << ": " << rec.error;
    }
    return canonical_rollup(campaign_to_json(*spec, outcome));
  };

  const std::string serial = rollup(1);
  EXPECT_EQ(serial, rollup(1));
  EXPECT_EQ(serial, rollup(4));

  EXPECT_NE(serial.find("\"schema\": \"massf.campaign.v1\""),
            std::string::npos);
  EXPECT_NE(serial.find("\"failed\": []"), std::string::npos);
  EXPECT_NE(serial.find("\"807988445054369792\""), std::string::npos);
}

// Failed runs are reported, not thrown: they land in the roll-up's failed
// list with their diagnostic and don't disturb sibling runs.
TEST(Campaign, FailedRunIsReportedInRollup) {
  std::string error;
  auto spec = parse_campaign(
      "Campaign [\n" + std::string(kTinyBase) +
          "  sweep [\n    seed 2\n    seed 3\n  ]\n]",
      &error);
  ASSERT_TRUE(spec.has_value()) << error;
  // Sabotage one run post-parse: a restore path that doesn't exist.
  spec->runs[0].spec.options.ckpt.restore_path = "/no/such/checkpoint.ckpt";

  CampaignExecOptions opts;
  opts.workers = 2;
  const CampaignOutcome outcome = run_campaign(*spec, opts);
  ASSERT_EQ(outcome.runs.size(), 2u);
  EXPECT_FALSE(outcome.runs[0].ok);
  EXPECT_FALSE(outcome.runs[0].error.empty());
  EXPECT_TRUE(outcome.runs[1].ok) << outcome.runs[1].error;

  const std::string json = campaign_to_json(*spec, outcome);
  EXPECT_NE(json.find("\"failed\": [\"seed=2\"]"), std::string::npos) << json;
}

}  // namespace
}  // namespace massf
