#include <gtest/gtest.h>

#include <memory>

#include "net/netsim.hpp"
#include "net/packet.hpp"
#include "net/tcp.hpp"
#include "routing/forwarding.hpp"

namespace massf {
namespace {

// h4 - r0 --L-- r1 --L-- r2 --L-- r3 - h5   (L = inter-router latency)
Network line_network(SimTime router_latency = milliseconds(1),
                     double bandwidth = 1e8) {
  Network net;
  for (int i = 0; i < 4; ++i) {
    NetNode r;
    r.kind = NodeKind::kRouter;
    net.nodes.push_back(r);
  }
  net.num_routers = 4;
  for (int i = 0; i < 2; ++i) {
    NetNode h;
    h.kind = NodeKind::kHost;
    h.attach_router = i == 0 ? 0 : 3;
    net.nodes.push_back(h);
  }
  const auto link = [&](NodeId a, NodeId b, SimTime lat, double bw) {
    NetLink l;
    l.a = a;
    l.b = b;
    l.latency = lat;
    l.bandwidth_bps = bw;
    net.links.push_back(l);
  };
  link(0, 1, router_latency, bandwidth);
  link(1, 2, router_latency, bandwidth);
  link(2, 3, router_latency, bandwidth);
  link(0, 4, microseconds(10), bandwidth);
  link(3, 5, microseconds(10), bandwidth);
  net.build_adjacency();
  return net;
}

struct Fixture {
  explicit Fixture(const std::vector<LpId>& router_lp,
                   SimTime lookahead = milliseconds(1),
                   double queue_bytes = 256 * 1024,
                   SimTime router_latency = milliseconds(1),
                   double bandwidth = 1e8, SimTime end = seconds(30))
      : net(line_network(router_latency, bandwidth)),
        fp(ForwardingPlane::build_flat(net, std::vector<NodeId>{0, 3})) {
    EngineOptions eo;
    eo.lookahead = lookahead;
    eo.end_time = end;
    eo.cost_per_event_s = 1e-6;
    engine = std::make_unique<Engine>(eo);
    NetSimOptions no;
    no.queue_capacity_bytes = queue_bytes;
    no.collect_node_profile = true;
    sim = std::make_unique<NetSim>(net, fp, router_lp, *engine, no);
  }

  Network net;
  ForwardingPlane fp;
  std::unique_ptr<Engine> engine;
  std::unique_ptr<NetSim> sim;
};

TEST(Packet, EncodeDecodeRoundTrip) {
  Packet p;
  p.src = 123456;
  p.dst = 654321;
  p.flow = 0xABCDEF0123456789ULL;
  p.seq = 0xDEADBEEF;
  p.len = 0x123456;  // 24-bit max
  p.flags = kFlagAck | kFlagFin;
  p.arrive = 42;
  p.ack = 0xCAFEBABE;
  Event ev;
  p.encode(ev);
  const Packet q = Packet::decode(ev);
  EXPECT_EQ(q.src, p.src);
  EXPECT_EQ(q.dst, p.dst);
  EXPECT_EQ(q.flow, p.flow);
  EXPECT_EQ(q.seq, p.seq);
  EXPECT_EQ(q.len, p.len);
  EXPECT_EQ(q.flags, p.flags);
  EXPECT_EQ(q.arrive, p.arrive);
  EXPECT_EQ(q.ack, p.ack);
}

TEST(Packet, WireBytesIncludesHeader) {
  Packet p;
  p.len = 1000;
  EXPECT_EQ(p.wire_bytes(), 1000 + kHeaderBytes);
}

TEST(TcpReceiver, InOrderAdvances) {
  TcpReceiver r;
  EXPECT_TRUE(r.on_data(0, 100));
  EXPECT_EQ(r.expected, 100u);
  EXPECT_TRUE(r.on_data(100, 50));
  EXPECT_EQ(r.expected, 150u);
}

TEST(TcpReceiver, OutOfOrderBufferedThenAbsorbed) {
  TcpReceiver r;
  EXPECT_FALSE(r.on_data(100, 100));  // hole at [0,100)
  EXPECT_EQ(r.expected, 0u);
  EXPECT_FALSE(r.on_data(300, 100));
  EXPECT_TRUE(r.on_data(0, 100));  // fills first hole, absorbs [100,200)
  EXPECT_EQ(r.expected, 200u);
  EXPECT_TRUE(r.on_data(200, 100));  // absorbs [300,400)
  EXPECT_EQ(r.expected, 400u);
  EXPECT_TRUE(r.ooo.empty());
}

TEST(TcpReceiver, DuplicatesIgnored) {
  TcpReceiver r;
  r.on_data(0, 100);
  EXPECT_FALSE(r.on_data(0, 100));
  EXPECT_FALSE(r.on_data(50, 50));
  EXPECT_EQ(r.expected, 100u);
}

TEST(TcpReceiver, OverlappingOooMerged) {
  TcpReceiver r;
  r.on_data(200, 100);
  r.on_data(250, 100);  // overlaps previous
  r.on_data(100, 100);  // adjacent below
  EXPECT_EQ(r.ooo.size(), 1u);
  r.on_data(0, 100);
  EXPECT_EQ(r.expected, 350u);
}

TEST(TcpReceiver, CompletionNeedsFin) {
  TcpReceiver r;
  r.on_data(0, 100);
  EXPECT_FALSE(r.all_received());
  r.fin_seen = true;
  r.fin_seq = 100;
  EXPECT_TRUE(r.all_received());
}

TEST(TcpRtt, EwmaAndClamp) {
  TcpSender s;
  tcp_rtt_update(s, milliseconds(200));
  EXPECT_EQ(s.srtt, milliseconds(200));
  EXPECT_EQ(s.rto, milliseconds(400));
  tcp_rtt_update(s, milliseconds(200));
  EXPECT_EQ(s.srtt, milliseconds(200));
  // Tiny sample clamps RTO at the floor.
  TcpSender fast;
  tcp_rtt_update(fast, microseconds(100));
  EXPECT_EQ(fast.rto, kMinRto);
  // Huge samples clamp at the ceiling.
  TcpSender slow;
  tcp_rtt_update(slow, seconds(10));
  EXPECT_EQ(slow.rto, kMaxRto);
}

TEST(NetSim, SingleFlowCompletes) {
  Fixture f({0, 0, 0, 0});
  std::uint32_t completions = 0;
  std::uint32_t observed_tag = 0;
  f.sim->set_flow_complete([&](Engine&, NetSim&, FlowId, NodeId src,
                               NodeId dst, std::uint32_t tag, bool) {
    ++completions;
    observed_tag = tag;
    EXPECT_EQ(src, 4);
    EXPECT_EQ(dst, 5);
  });
  f.sim->start_flow(*f.engine, milliseconds(1), 4, 5, 100000, 777);
  f.engine->run();
  EXPECT_EQ(completions, 1u);
  EXPECT_EQ(observed_tag, 777u);
  const auto c = f.sim->totals();
  EXPECT_EQ(c.flows_started, 1u);
  EXPECT_EQ(c.flows_completed, 1u);
  EXPECT_EQ(c.dropped_queue, 0u);
  EXPECT_EQ(c.retransmits, 0u);
  // ~100000/1460 = 69 data segments delivered, each generating an ack.
  EXPECT_GE(c.delivered, 69u);
  EXPECT_GE(c.acks, 69u);
}

TEST(NetSim, LossyLinkRecoversViaRetransmission) {
  // 4 KB of queue: bursts overflow, TCP must retransmit but still finish.
  Fixture f({0, 0, 0, 0}, milliseconds(1), 4 * 1024);
  std::uint32_t completions = 0;
  f.sim->set_flow_complete(
      [&](Engine&, NetSim&, FlowId, NodeId, NodeId, std::uint32_t, bool) {
        ++completions;
      });
  f.sim->start_flow(*f.engine, milliseconds(1), 4, 5, 500000, 1);
  f.engine->run();
  const auto c = f.sim->totals();
  EXPECT_EQ(completions, 1u) << "flow failed to complete under loss";
  EXPECT_GT(c.dropped_queue, 0u);
  EXPECT_GT(c.retransmits, 0u);
}

TEST(NetSim, UdpDelivered) {
  Fixture f({0, 0, 0, 0});
  std::uint32_t received = 0;
  f.sim->set_udp_receive([&](Engine&, NetSim&, const Packet& p) {
    ++received;
    EXPECT_EQ(p.src, 4);
    EXPECT_EQ(p.dst, 5);
    EXPECT_EQ(p.len, 900u);
    EXPECT_EQ(p.ack, 55u);  // tag
  });
  f.sim->send_udp(*f.engine, milliseconds(1), 4, 5, 900, 55);
  f.engine->run();
  EXPECT_EQ(received, 1u);
  EXPECT_EQ(f.sim->totals().udp_delivered, 1u);
}

TEST(NetSim, AppTimerFires) {
  Fixture f({0, 0, 0, 0});
  SimTime fired_at = -1;
  f.sim->set_app_timer([&](Engine& e, NetSim&, NodeId host, std::uint64_t b,
                           std::uint64_t c) {
    fired_at = e.now();
    EXPECT_EQ(host, 4);
    EXPECT_EQ(b, 11u);
    EXPECT_EQ(c, 22u);
  });
  f.sim->schedule_app_timer(*f.engine, 4, milliseconds(7), 11, 22);
  f.engine->run();
  EXPECT_EQ(fired_at, milliseconds(7));
}

TEST(NetSim, CrossLpFlowRespectsLookahead) {
  // Routers 0,1 on LP0; 2,3 on LP1; the 1-2 link (1 ms) crosses.
  Fixture f({0, 0, 1, 1});
  std::uint32_t completions = 0;
  f.sim->set_flow_complete(
      [&](Engine&, NetSim&, FlowId, NodeId, NodeId, std::uint32_t, bool) {
        ++completions;
      });
  f.sim->start_flow(*f.engine, milliseconds(1), 4, 5, 50000, 1);
  const RunStats stats = f.engine->run();
  EXPECT_EQ(completions, 1u);
  EXPECT_EQ(stats.events_per_lp.size(), 2u);
  EXPECT_GT(stats.events_per_lp[0], 0u);
  EXPECT_GT(stats.events_per_lp[1], 0u);
}

TEST(NetSim, ThreadedMatchesSequential) {
  const auto run = [](bool threaded) {
    Fixture f({0, 0, 1, 1});
    std::uint64_t completions = 0;
    f.sim->set_flow_complete(
        [&](Engine&, NetSim&, FlowId, NodeId, NodeId, std::uint32_t, bool) {
          ++completions;
        });
    f.sim->start_flow(*f.engine, milliseconds(1), 4, 5, 200000, 1);
    f.sim->start_flow(*f.engine, milliseconds(2), 5, 4, 100000, 2);
    const RunStats stats =
        threaded ? f.engine->run_threaded(2) : f.engine->run();
    const auto c = f.sim->totals();
    return std::vector<std::uint64_t>{stats.total_events,
                                      stats.events_per_lp[0],
                                      stats.events_per_lp[1],
                                      stats.num_windows,
                                      c.forwarded,
                                      c.delivered,
                                      c.acks,
                                      completions};
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(NetSim, NodeProfileCollected) {
  Fixture f({0, 0, 0, 0});
  f.sim->start_flow(*f.engine, milliseconds(1), 4, 5, 10000, 1);
  f.engine->run();
  const auto& profile = f.sim->node_profile();
  ASSERT_EQ(profile.size(), f.net.nodes.size());
  // Transit routers saw arrivals; both hosts saw deliveries.
  EXPECT_GT(profile[1], 0u);
  EXPECT_GT(profile[2], 0u);
  EXPECT_GT(profile[4], 0u);
  EXPECT_GT(profile[5], 0u);
}

TEST(NetSim, BidirectionalFlowsShareLinks) {
  Fixture f({0, 0, 0, 0});
  std::uint32_t completions = 0;
  f.sim->set_flow_complete(
      [&](Engine&, NetSim&, FlowId, NodeId, NodeId, std::uint32_t, bool) {
        ++completions;
      });
  f.sim->start_flow(*f.engine, milliseconds(1), 4, 5, 300000, 1);
  f.sim->start_flow(*f.engine, milliseconds(1), 5, 4, 300000, 2);
  f.engine->run();
  EXPECT_EQ(completions, 2u);
}

TEST(NetSim, ManyConcurrentFlowsAllComplete) {
  Fixture f({0, 0, 1, 1});
  std::uint32_t completions = 0;
  f.sim->set_flow_complete(
      [&](Engine&, NetSim&, FlowId, NodeId, NodeId, std::uint32_t, bool) {
        ++completions;
      });
  for (int i = 0; i < 20; ++i) {
    f.sim->start_flow(*f.engine, milliseconds(1 + i), i % 2 ? 4 : 5,
                      i % 2 ? 5 : 4, 20000 + 1000 * i,
                      static_cast<std::uint32_t>(i));
  }
  f.engine->run();
  EXPECT_EQ(completions, 20u);
}

// ---- Failure injection ----------------------------------------------------

TEST(NetSim, LinkFlapFlowStillCompletes) {
  Fixture f({0, 0, 0, 0}, milliseconds(1), 256.0 * 1024, milliseconds(1),
            1e8, seconds(120));
  std::uint32_t completions = 0;
  SimTime completed_at = -1;
  f.sim->set_flow_complete(
      [&](Engine& e, NetSim&, FlowId, NodeId, NodeId, std::uint32_t, bool) {
        ++completions;
        completed_at = e.now();
      });
  // Middle link (1-2) goes down during the transfer, back up 3 s later.
  f.sim->link_model().schedule_link_state(*f.engine, 1, milliseconds(20), false);
  f.sim->link_model().schedule_link_state(*f.engine, 1, seconds(3), true);
  f.sim->start_flow(*f.engine, milliseconds(1), 4, 5, 500000, 1);
  f.engine->run();
  const auto c = f.sim->totals();
  EXPECT_EQ(completions, 1u);
  EXPECT_GT(c.dropped_link_down, 0u);
  EXPECT_GT(c.retransmits, 0u);
  EXPECT_EQ(c.flows_failed, 0u);
  EXPECT_GT(completed_at, seconds(3));  // had to wait out the outage
}

TEST(NetSim, PermanentOutageAbandonsFlow) {
  Fixture f({0, 0, 0, 0}, milliseconds(1), 256.0 * 1024, milliseconds(1),
            1e8, seconds(300));
  std::uint32_t completions = 0;
  std::uint32_t failures = 0;
  f.sim->set_flow_complete(
      [&](Engine&, NetSim&, FlowId, NodeId, NodeId, std::uint32_t,
          bool failed) {
        if (failed) {
          ++failures;
        } else {
          ++completions;
        }
      });
  f.sim->link_model().schedule_link_state(*f.engine, 1, milliseconds(10), false);
  f.sim->start_flow(*f.engine, milliseconds(20), 4, 5, 100000, 1);
  const RunStats stats = f.engine->run();
  const auto c = f.sim->totals();
  // Abandonment surfaces through the completion callback with
  // failed=true, on the sender's LP.
  EXPECT_EQ(completions, 0u);
  EXPECT_EQ(failures, 1u);
  EXPECT_EQ(c.flows_failed, 1u);
  // The give-up bound also bounds the event count: no retransmission
  // chatter to the horizon.
  EXPECT_LT(stats.total_events, 500u);
  // Exponential backoff ran its course (bounded retransmissions).
  EXPECT_LE(c.retransmits, 16u);
}

TEST(NetSim, UdpSilentlyLostOnDownLink) {
  Fixture f({0, 0, 0, 0});
  std::uint32_t received = 0;
  f.sim->set_udp_receive(
      [&](Engine&, NetSim&, const Packet&) { ++received; });
  f.sim->link_model().schedule_link_state(*f.engine, 0, milliseconds(1), false);
  f.sim->send_udp(*f.engine, milliseconds(5), 4, 5, 500, 1);
  f.engine->run();
  EXPECT_EQ(received, 0u);
  EXPECT_EQ(f.sim->totals().dropped_link_down, 1u);
}

// ---- Parameterized TCP property sweep ----------------------------------
// Across bandwidths, buffer sizes, link latencies, and transfer sizes:
// every flow completes exactly once, and the completion time respects the
// physical bounds (serialization + propagation below, bandwidth above).

struct TcpCase {
  double bandwidth_bps;
  double queue_bytes;
  SimTime latency;
  std::uint32_t size;
};

class TcpSweep : public ::testing::TestWithParam<TcpCase> {};

TEST_P(TcpSweep, ReliableDeliveryWithinPhysicalBounds) {
  const TcpCase c = GetParam();
  Fixture f({0, 0, 0, 0}, std::min<SimTime>(c.latency, milliseconds(1)),
            c.queue_bytes, c.latency, c.bandwidth_bps, seconds(600));
  std::uint32_t completions = 0;
  SimTime completed_at = -1;
  f.sim->set_flow_complete(
      [&](Engine& e, NetSim&, FlowId, NodeId, NodeId, std::uint32_t, bool) {
        ++completions;
        completed_at = e.now();
      });
  f.sim->start_flow(*f.engine, milliseconds(1), 4, 5, c.size, 1);
  f.engine->run();

  ASSERT_EQ(completions, 1u)
      << "bw=" << c.bandwidth_bps << " q=" << c.queue_bytes
      << " size=" << c.size;
  // Lower bound: one-way propagation (3 router hops + 2 access links) plus
  // serializing the whole flow once at the bottleneck.
  const double propagation = 3 * to_seconds(c.latency) + 2 * 10e-6;
  const double serialization =
      static_cast<double>(c.size) * 8 / c.bandwidth_bps;
  EXPECT_GE(to_seconds(completed_at - milliseconds(1)),
            propagation + serialization * 0.9);
  // Sanity upper bound: loss and slow start cannot inflate the transfer
  // beyond a generous multiple of the ideal time plus RTO allowance.
  EXPECT_LT(to_seconds(completed_at), 500.0);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, TcpSweep,
    ::testing::Values(
        // Clean fast path.
        TcpCase{1e9, 256e3, microseconds(100), 100000},
        // Slow link, big transfer: bandwidth-bound.
        TcpCase{1e6, 64e3, milliseconds(1), 200000},
        // Tiny buffers: loss recovery.
        TcpCase{1e8, 3000, milliseconds(1), 300000},
        TcpCase{1e7, 3000, milliseconds(5), 150000},
        // Long fat pipe.
        TcpCase{1e9, 512e3, milliseconds(20), 2000000},
        // Single-segment flow.
        TcpCase{1e8, 64e3, milliseconds(1), 400},
        // Exactly one MSS and one-plus-a-byte.
        TcpCase{1e8, 64e3, milliseconds(1), 1460},
        TcpCase{1e8, 64e3, milliseconds(1), 1461},
        // High-latency lossy path.
        TcpCase{5e6, 8000, milliseconds(25), 100000}));

TEST(NetSim, ThroughputBoundedByBandwidth) {
  // 10 Mbps bottleneck, 1 MB transfer: needs >= 0.8 s of virtual time.
  Fixture f({0, 0, 0, 0}, milliseconds(1), 256.0 * 1024, milliseconds(1),
            1e7, seconds(60));
  SimTime completed_at = -1;
  f.sim->set_flow_complete(
      [&](Engine& e, NetSim&, FlowId, NodeId, NodeId, std::uint32_t, bool) {
        completed_at = e.now();
      });
  f.sim->start_flow(*f.engine, milliseconds(1), 4, 5, 1000000, 1);
  f.engine->run();
  ASSERT_GT(completed_at, 0);
  EXPECT_GT(to_seconds(completed_at), 0.8);
}

}  // namespace
}  // namespace massf
