// WarningLog + the surfaced-fallback paths (ISSUE satellite: run_threaded
// used to fall back silently when clamping its thread count or when
// hardware_concurrency() is unreportable; both now leave a config-category
// EngineWarning behind while the run continues).
#include <gtest/gtest.h>

#include <memory>

#include "pdes/engine.hpp"
#include "util/warn.hpp"

namespace massf {
namespace {

class CountLp final : public LogicalProcess {
 public:
  void handle(Engine&, const Event&) override { ++events; }
  std::uint64_t events = 0;
};

TEST(WarningLog, KeepsEntriesAndCountsOverflow) {
  auto& log = WarningLog::instance();
  log.clear();
  for (std::size_t i = 0; i < WarningLog::kMaxKept + 10; ++i) {
    warn(ErrorCategory::kTopology, "w" + std::to_string(i));
  }
  EXPECT_EQ(log.count(), WarningLog::kMaxKept + 10);
  const auto kept = log.snapshot();
  ASSERT_EQ(kept.size(), WarningLog::kMaxKept);  // bounded
  EXPECT_EQ(kept.front().category, ErrorCategory::kTopology);
  EXPECT_EQ(kept.front().message, "w0");
  log.clear();
  EXPECT_EQ(log.count(), 0u);
  EXPECT_TRUE(log.snapshot().empty());
}

TEST(Warn, ThreadClampIsSurfacedAndRunContinues) {
  WarningLog::instance().clear();
  EngineOptions o;
  o.lookahead = milliseconds(1);
  o.end_time = milliseconds(10);
  Engine engine(o);
  engine.add_lp(std::make_unique<CountLp>());
  engine.add_lp(std::make_unique<CountLp>());
  for (LpId i = 0; i < 2; ++i) engine.schedule(i, 0, 1);

  // 6 threads over 2 LPs: the executor must clamp, warn, and still run.
  const RunStats stats = engine.run_threaded(6);
  EXPECT_EQ(stats.total_events, 2u);

  const auto warnings = WarningLog::instance().snapshot();
  ASSERT_FALSE(warnings.empty());
  EXPECT_EQ(warnings.front().category, ErrorCategory::kConfig);
  EXPECT_NE(warnings.front().message.find("run_threaded: 6 threads"),
            std::string::npos);
  EXPECT_NE(warnings.front().message.find("clamped to 2"), std::string::npos);
}

TEST(Warn, NoClampWarningWhenThreadsFit) {
  WarningLog::instance().clear();
  EngineOptions o;
  o.lookahead = milliseconds(1);
  o.end_time = milliseconds(10);
  Engine engine(o);
  for (int i = 0; i < 4; ++i) engine.add_lp(std::make_unique<CountLp>());
  engine.schedule(0, 0, 1);
  engine.run_threaded(2);
  for (const auto& w : WarningLog::instance().snapshot()) {
    EXPECT_EQ(w.message.find("run_threaded:"), std::string::npos)
        << w.message;
  }
}

TEST(Warn, UnknownHostConcurrencyLatchesOncePerProcess) {
  WarningLog::instance().clear();
  // hc > 0 is never a complaint.
  EXPECT_FALSE(warn_unknown_host_concurrency(8));
  EXPECT_EQ(WarningLog::instance().count(), 0u);
  // hc == 0 warns on the first call that sees it, then stays quiet: the
  // fallback is process-wide, so one stderr line is the whole story.
  const bool first = warn_unknown_host_concurrency(0);
  const bool second = warn_unknown_host_concurrency(0);
  EXPECT_FALSE(second);
  if (first) {
    const auto warnings = WarningLog::instance().snapshot();
    ASSERT_EQ(warnings.size(), 1u);
    EXPECT_EQ(warnings.front().category, ErrorCategory::kConfig);
    EXPECT_NE(warnings.front().message.find("hardware_concurrency() == 0"),
              std::string::npos);
  }
  // first may be false when another test (run_threaded on a host that
  // reports 0) already consumed the latch — the invariant under test is
  // at-most-once, which `second == false` pins either way.
}

}  // namespace
}  // namespace massf
