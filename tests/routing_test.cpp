#include <gtest/gtest.h>

#include <numeric>
#include <queue>

#include "routing/bgp.hpp"
#include "routing/forwarding.hpp"
#include "routing/ospf.hpp"
#include "topology/brite.hpp"
#include "topology/mabrite.hpp"

namespace massf {
namespace {

// A hand-built 4-router line with one host at each end:
//   h4 - r0 --1ms-- r1 --2ms-- r2 --1ms-- r3 - h5
Network line_network() {
  Network net;
  for (int i = 0; i < 4; ++i) {
    NetNode r;
    r.kind = NodeKind::kRouter;
    net.nodes.push_back(r);
  }
  net.num_routers = 4;
  for (int i = 0; i < 2; ++i) {
    NetNode h;
    h.kind = NodeKind::kHost;
    h.attach_router = i == 0 ? 0 : 3;
    net.nodes.push_back(h);
  }
  const auto link = [&](NodeId a, NodeId b, SimTime lat) {
    NetLink l;
    l.a = a;
    l.b = b;
    l.latency = lat;
    l.bandwidth_bps = 1e9;
    net.links.push_back(l);
  };
  link(0, 1, milliseconds(1));
  link(1, 2, milliseconds(2));
  link(2, 3, milliseconds(1));
  link(0, 4, microseconds(10));
  link(3, 5, microseconds(10));
  net.build_adjacency();
  return net;
}

TEST(Ospf, LineNextHops) {
  const Network net = line_network();
  std::vector<NodeId> members{0, 1, 2, 3};
  OspfDomain ospf(net, members, /*use_inter_as_links=*/true);
  ospf.add_destination(net, 3);
  EXPECT_EQ(ospf.next_hop(net, 0, 3), 1);
  EXPECT_EQ(ospf.next_hop(net, 1, 3), 2);
  EXPECT_EQ(ospf.next_hop(net, 2, 3), 3);
  EXPECT_EQ(ospf.next_link(net.num_routers - 1, 3), kInvalidLink);
  EXPECT_EQ(ospf.distance(0, 3), milliseconds(4));
  EXPECT_EQ(ospf.distance(3, 3), 0);
}

TEST(Ospf, PrefersShorterLatencyPath) {
  // Triangle: 0-1 direct 10ms, 0-2-1 via 1ms+1ms.
  Network net;
  for (int i = 0; i < 3; ++i) {
    NetNode r;
    r.kind = NodeKind::kRouter;
    net.nodes.push_back(r);
  }
  net.num_routers = 3;
  const auto link = [&](NodeId a, NodeId b, SimTime lat) {
    NetLink l;
    l.a = a;
    l.b = b;
    l.latency = lat;
    l.bandwidth_bps = 1e9;
    net.links.push_back(l);
  };
  link(0, 1, milliseconds(10));
  link(0, 2, milliseconds(1));
  link(2, 1, milliseconds(1));
  net.build_adjacency();

  std::vector<NodeId> members{0, 1, 2};
  OspfDomain ospf(net, members, true);
  ospf.add_destination(net, 1);
  EXPECT_EQ(ospf.next_hop(net, 0, 1), 2);
  EXPECT_EQ(ospf.distance(0, 1), milliseconds(2));
}

// Brute-force Dijkstra for cross-checking on generated networks.
std::vector<std::int64_t> brute_distances(const Network& net, NodeId dest) {
  std::vector<std::int64_t> dist(net.nodes.size(), -1);
  using Q = std::pair<std::int64_t, NodeId>;
  std::priority_queue<Q, std::vector<Q>, std::greater<>> pq;
  dist[static_cast<std::size_t>(dest)] = 0;
  pq.push({0, dest});
  while (!pq.empty()) {
    auto [d, v] = pq.top();
    pq.pop();
    if (d != dist[static_cast<std::size_t>(v)]) continue;
    for (const auto& inc : net.incident(v)) {
      if (!net.is_router(inc.peer)) continue;
      const std::int64_t nd =
          d + net.links[static_cast<std::size_t>(inc.link)].latency;
      auto& cur = dist[static_cast<std::size_t>(inc.peer)];
      if (cur < 0 || nd < cur) {
        cur = nd;
        pq.push({nd, inc.peer});
      }
    }
  }
  return dist;
}

TEST(Ospf, MatchesBruteForceOnGeneratedNetwork) {
  BriteOptions o;
  o.num_routers = 200;
  o.num_hosts = 10;
  o.seed = 3;
  const Network net = generate_flat(o);
  std::vector<NodeId> members(static_cast<std::size_t>(net.num_routers));
  std::iota(members.begin(), members.end(), NodeId{0});
  OspfDomain ospf(net, members, true);
  for (NodeId dest : {NodeId{0}, NodeId{57}, NodeId{123}}) {
    ospf.add_destination(net, dest);
    const auto brute = brute_distances(net, dest);
    for (NodeId r = 0; r < net.num_routers; ++r) {
      EXPECT_EQ(ospf.distance(r, dest), brute[static_cast<std::size_t>(r)]);
    }
  }
}

TEST(Ospf, FollowingNextHopsReachesDest) {
  BriteOptions o;
  o.num_routers = 150;
  o.num_hosts = 10;
  o.seed = 4;
  const Network net = generate_flat(o);
  std::vector<NodeId> members(static_cast<std::size_t>(net.num_routers));
  std::iota(members.begin(), members.end(), NodeId{0});
  OspfDomain ospf(net, members, true);
  const NodeId dest = 77;
  ospf.add_destination(net, dest);
  for (NodeId start : {NodeId{0}, NodeId{50}, NodeId{149}}) {
    NodeId cur = start;
    int hops = 0;
    while (cur != dest) {
      cur = ospf.next_hop(net, cur, dest);
      ASSERT_NE(cur, kInvalidNode);
      ASSERT_LT(++hops, net.num_routers);
    }
  }
}

TEST(Ospf, LinkExclusionReroutesAfterRecompute) {
  // Triangle: direct 0-1 is cheapest until it is withdrawn.
  Network net;
  for (int i = 0; i < 3; ++i) {
    NetNode r;
    r.kind = NodeKind::kRouter;
    net.nodes.push_back(r);
  }
  net.num_routers = 3;
  const auto link = [&](NodeId a, NodeId b, SimTime lat) {
    NetLink l;
    l.a = a;
    l.b = b;
    l.latency = lat;
    l.bandwidth_bps = 1e9;
    net.links.push_back(l);
  };
  link(0, 1, milliseconds(1));   // link 0: direct
  link(0, 2, milliseconds(2));   // link 1
  link(2, 1, milliseconds(2));   // link 2
  net.build_adjacency();

  std::vector<NodeId> members{0, 1, 2};
  OspfDomain ospf(net, members, true);
  ospf.add_destination(net, 1);
  EXPECT_EQ(ospf.next_hop(net, 0, 1), 1);

  ospf.set_link_excluded(0, true);
  ospf.recompute(net);
  EXPECT_EQ(ospf.next_hop(net, 0, 1), 2);
  EXPECT_EQ(ospf.distance(0, 1), milliseconds(4));

  ospf.set_link_excluded(0, false);
  ospf.recompute(net);
  EXPECT_EQ(ospf.next_hop(net, 0, 1), 1);
}

TEST(Ospf, ExclusionCanDisconnect) {
  Network net = line_network();
  std::vector<NodeId> members{0, 1, 2, 3};
  OspfDomain ospf(net, members, true);
  ospf.add_destination(net, 3);
  ospf.set_link_excluded(1, true);  // the only 1-2 link
  ospf.recompute(net);
  EXPECT_EQ(ospf.next_link(0, 3), kInvalidLink);
  EXPECT_EQ(ospf.distance(0, 3), -1);
}

// ---- BGP -------------------------------------------------------------

// Builds adjacency records; rel is the relationship of b from a's view.
AsAdjacency adj(AsId a, AsId b, AsRel rel_ab) {
  AsAdjacency r;
  r.as_a = a;
  r.as_b = b;
  r.rel_ab = rel_ab;
  return r;
}

TEST(Bgp, CustomerRoutePreferredOverPeerAndProvider) {
  // AS0 can reach AS3 via customer AS1, peer AS2 — must pick the customer
  // even if paths tie in length.
  //   0 -- customer: 1 -- customer: 3
  //   0 -- peer: 2 -- customer: 3
  const std::vector<AsAdjacency> adjs{
      adj(0, 1, AsRel::kCustomer),
      adj(0, 2, AsRel::kPeer),
      adj(1, 3, AsRel::kCustomer),
      adj(2, 3, AsRel::kCustomer),
  };
  BgpSolver bgp(4, adjs);
  bgp.solve();
  EXPECT_EQ(bgp.route(0, 3).next_hop_as, 1);
  EXPECT_EQ(bgp.route(0, 3).learned_from, AsRel::kCustomer);
}

TEST(Bgp, PeerRoutesNotTransitive) {
  // 0 --peer-- 1 --peer-- 2: 1 must not export 2's routes to 0.
  const std::vector<AsAdjacency> adjs{
      adj(0, 1, AsRel::kPeer),
      adj(1, 2, AsRel::kPeer),
  };
  BgpSolver bgp(3, adjs);
  bgp.solve();
  EXPECT_FALSE(bgp.reachable(0, 2));  // connectivity != reachability
  EXPECT_TRUE(bgp.reachable(0, 1));
  EXPECT_TRUE(bgp.reachable(1, 2));
}

TEST(Bgp, ProviderGivesFullTransit) {
  // 0 is customer of 1; 2 is customer of 1. 0 and 2 reach each other
  // through the shared provider.
  const std::vector<AsAdjacency> adjs{
      adj(0, 1, AsRel::kProvider),  // 1 is 0's provider
      adj(2, 1, AsRel::kProvider),
  };
  BgpSolver bgp(3, adjs);
  bgp.solve();
  EXPECT_TRUE(bgp.reachable(0, 2));
  const auto path = bgp.as_path(0, 2);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[1], 1);
  EXPECT_TRUE(bgp.path_is_valley_free(0, 2));
}

TEST(Bgp, NoValleyThroughCustomer) {
  // 1 and 2 are both providers of 0; routes between 1 and 2 must not
  // transit their customer 0.
  const std::vector<AsAdjacency> adjs{
      adj(0, 1, AsRel::kProvider),
      adj(0, 2, AsRel::kProvider),
  };
  BgpSolver bgp(3, adjs);
  bgp.solve();
  EXPECT_FALSE(bgp.reachable(1, 2));
}

TEST(Bgp, ShorterPathWinsWithinSamePreferenceClass) {
  // 0's two customers lead to 4: via 1->3->4 (len 3) or via 2->4 (len 2).
  const std::vector<AsAdjacency> adjs{
      adj(0, 1, AsRel::kCustomer), adj(0, 2, AsRel::kCustomer),
      adj(1, 3, AsRel::kCustomer), adj(3, 4, AsRel::kCustomer),
      adj(2, 4, AsRel::kCustomer),
  };
  BgpSolver bgp(5, adjs);
  bgp.solve();
  EXPECT_EQ(bgp.route(0, 4).next_hop_as, 2);
  EXPECT_EQ(bgp.route(0, 4).path_len, 2);
}

TEST(Bgp, SelfRouteTrivial) {
  BgpSolver bgp(2, std::vector<AsAdjacency>{adj(0, 1, AsRel::kPeer)});
  bgp.solve();
  EXPECT_TRUE(bgp.reachable(0, 0));
  EXPECT_EQ(bgp.as_path(0, 0), std::vector<AsId>{0});
}

TEST(Bgp, LocalPrefOrdering) {
  EXPECT_GT(local_pref_for(AsRel::kCustomer), local_pref_for(AsRel::kPeer));
  EXPECT_GT(local_pref_for(AsRel::kPeer), local_pref_for(AsRel::kProvider));
}

TEST(Bgp, GeneratedTopologyFullReachabilityAndValleyFree) {
  MaBriteOptions o;
  o.num_as = 20;
  o.routers_per_as = 5;
  o.num_hosts = 10;
  o.seed = 6;
  const Network net = generate_multi_as(o);
  BgpSolver bgp(net.num_as(), net.as_adjacency);
  bgp.solve();
  for (AsId a = 0; a < net.num_as(); ++a) {
    for (AsId b = 0; b < net.num_as(); ++b) {
      // maBrite guarantees provider paths to the core clique, which makes
      // the whole AS graph mutually reachable...
      EXPECT_TRUE(bgp.reachable(a, b)) << a << "->" << b;
      // ...and every chosen path must be valley-free.
      EXPECT_TRUE(bgp.path_is_valley_free(a, b)) << a << "->" << b;
    }
  }
}

// ---- ForwardingPlane ---------------------------------------------------

TEST(ForwardingFlat, DeliversToHost) {
  const Network net = line_network();
  const std::vector<NodeId> dests{0, 3};
  const ForwardingPlane fp = ForwardingPlane::build_flat(net, dests);

  // Walk a packet from router 0 to host 5 (attached to router 3).
  NodeId cur = 0;
  int hops = 0;
  while (true) {
    const LinkId l = fp.next_link(cur, 5);
    ASSERT_NE(l, kInvalidLink);
    const NetLink& link = net.links[static_cast<std::size_t>(l)];
    const NodeId next = link.a == cur ? link.b : link.a;
    if (next == 5) break;
    cur = next;
    ASSERT_LT(++hops, 10);
  }
  EXPECT_EQ(fp.dest_router(5), 3);
  EXPECT_TRUE(fp.reachable(0, 5));
  EXPECT_FALSE(fp.is_multi_as());
}

TEST(ForwardingFlat, ArrivedReturnsInvalid) {
  const Network net = line_network();
  const std::vector<NodeId> dests{0, 3};
  const ForwardingPlane fp = ForwardingPlane::build_flat(net, dests);
  EXPECT_EQ(fp.next_link(3, 3), kInvalidLink);
  // At the attach router of a host destination: returns the access link.
  const LinkId l = fp.next_link(3, 5);
  const NetLink& link = net.links[static_cast<std::size_t>(l)];
  EXPECT_TRUE(link.a == 5 || link.b == 5);
}

class ForwardingMultiAs : public ::testing::Test {
 protected:
  void SetUp() override {
    MaBriteOptions o;
    o.num_as = 15;
    o.routers_per_as = 8;
    o.num_hosts = 60;
    o.seed = 9;
    net_ = generate_multi_as(o);
    for (NodeId h = net_.num_routers;
         h < static_cast<NodeId>(net_.nodes.size()); ++h) {
      dests_.push_back(net_.nodes[static_cast<std::size_t>(h)].attach_router);
    }
    fp_ = std::make_unique<ForwardingPlane>(
        ForwardingPlane::build_multi_as(net_, dests_));
  }

  Network net_;
  std::vector<NodeId> dests_;
  std::unique_ptr<ForwardingPlane> fp_;
};

TEST_F(ForwardingMultiAs, HostToHostPathsTerminate) {
  const NodeId h1 = net_.num_routers + 1;
  const NodeId h2 = static_cast<NodeId>(net_.nodes.size()) - 1;
  ASSERT_TRUE(fp_->reachable(h1, h2));
  NodeId cur = net_.nodes[static_cast<std::size_t>(h1)].attach_router;
  int hops = 0;
  while (true) {
    const LinkId l = fp_->next_link(cur, h2);
    ASSERT_NE(l, kInvalidLink) << "stuck at router " << cur;
    const NetLink& link = net_.links[static_cast<std::size_t>(l)];
    const NodeId next = link.a == cur ? link.b : link.a;
    if (next == h2) break;
    ASSERT_TRUE(net_.is_router(next));
    cur = next;
    ASSERT_LT(++hops, 200) << "forwarding loop";
  }
}

TEST_F(ForwardingMultiAs, AllHostPairsDeliverable) {
  // Sample pairs; walking must terminate for every reachable pair.
  for (NodeId h1 = net_.num_routers;
       h1 < static_cast<NodeId>(net_.nodes.size()); h1 += 7) {
    for (NodeId h2 = net_.num_routers + 3;
         h2 < static_cast<NodeId>(net_.nodes.size()); h2 += 11) {
      if (h1 == h2) continue;
      if (!fp_->reachable(h1, h2)) continue;
      NodeId cur = net_.nodes[static_cast<std::size_t>(h1)].attach_router;
      int hops = 0;
      bool arrived = false;
      while (hops < 300) {
        const LinkId l = fp_->next_link(cur, h2);
        if (l == kInvalidLink) break;
        const NetLink& link = net_.links[static_cast<std::size_t>(l)];
        const NodeId next = link.a == cur ? link.b : link.a;
        ++hops;
        if (next == h2) {
          arrived = true;
          break;
        }
        cur = next;
      }
      EXPECT_TRUE(arrived) << h1 << "->" << h2;
    }
  }
}

TEST_F(ForwardingMultiAs, StubTrafficLeavesViaDefaultProvider) {
  // Find a stub AS and verify its cross-AS next hops use its default
  // (provider) egress regardless of destination.
  ASSERT_TRUE(fp_->is_multi_as());
  AsId stub = -1;
  for (AsId a = 0; a < net_.num_as(); ++a) {
    if (net_.as_info[static_cast<std::size_t>(a)].cls == AsClass::kStub) {
      stub = a;
      break;
    }
  }
  ASSERT_GE(stub, 0);
  const AsInfo& info = net_.as_info[static_cast<std::size_t>(stub)];

  // Pick two destination hosts in two different foreign ASes.
  std::vector<NodeId> foreign;
  for (NodeId h = net_.num_routers;
       h < static_cast<NodeId>(net_.nodes.size()) && foreign.size() < 2;
       ++h) {
    const AsId a = net_.nodes[static_cast<std::size_t>(h)].as_id;
    if (a != stub &&
        (foreign.empty() ||
         net_.nodes[static_cast<std::size_t>(foreign[0])].as_id != a)) {
      foreign.push_back(h);
    }
  }
  ASSERT_EQ(foreign.size(), 2u);

  // From an interior stub router, the first hop toward any foreign
  // destination must be identical (default routing).
  const NodeId r = info.first_router;
  const LinkId l1 = fp_->next_link(r, foreign[0]);
  const LinkId l2 = fp_->next_link(r, foreign[1]);
  ASSERT_NE(l1, kInvalidLink);
  EXPECT_EQ(l1, l2);
}

TEST_F(ForwardingMultiAs, BorderLinkFailureDropsThenRestores) {
  // Fail the chosen egress link of some AS pair; with no alternate link
  // for that pair, cross-AS next hops through it disappear until restore.
  // Pick an adjacency whose far side actually hosts traffic endpoints
  // (hosts live only in stub ASes).
  const AsAdjacency* chosen = nullptr;
  AsId dest_as = -1, near_as = -1;
  NodeId dest = kInvalidNode;
  for (const AsAdjacency& adj : net_.as_adjacency) {
    for (NodeId h = net_.num_routers;
         h < static_cast<NodeId>(net_.nodes.size()); ++h) {
      const AsId ha = net_.nodes[static_cast<std::size_t>(h)].as_id;
      if (ha == adj.as_a || ha == adj.as_b) {
        chosen = &adj;
        dest = h;
        dest_as = ha;
        near_as = ha == adj.as_a ? adj.as_b : adj.as_a;
        break;
      }
    }
    if (chosen != nullptr) break;
  }
  ASSERT_NE(chosen, nullptr) << "no adjacency toward a stub AS";
  const AsAdjacency& adj = *chosen;
  const NetLink& l = net_.links[static_cast<std::size_t>(adj.link)];
  // Probe from the border router on the non-destination side.
  const NodeId local_end =
      net_.nodes[static_cast<std::size_t>(l.a)].as_id == near_as ? l.a : l.b;

  // Count alternate physical links for this AS pair.
  int pair_links = 0;
  for (const AsAdjacency& other : net_.as_adjacency) {
    if ((other.as_a == adj.as_a && other.as_b == adj.as_b) ||
        (other.as_a == adj.as_b && other.as_b == adj.as_a)) {
      ++pair_links;
    }
  }

  const LinkId before = fp_->next_link(local_end, dest);
  ASSERT_NE(before, kInvalidLink);

  fp_->set_link_state(adj.link, false);
  fp_->reconverge();
  const LinkId during = fp_->next_link(local_end, dest);
  if (pair_links == 1) {
    // Depending on BGP tables the packet may still route via a *different*
    // neighbor AS; what must not happen is using the dead link.
    EXPECT_NE(during, adj.link);
  } else {
    ASSERT_NE(during, kInvalidLink);
    EXPECT_NE(during, adj.link);  // failed over to a sibling link
  }

  fp_->set_link_state(adj.link, true);
  fp_->reconverge();
  EXPECT_EQ(fp_->next_link(local_end, dest), before);
}

TEST(ForwardingMultiAsNoDefault, BgpLookupsPerDestination) {
  MaBriteOptions o;
  o.num_as = 10;
  o.routers_per_as = 6;
  o.num_hosts = 30;
  o.seed = 10;
  const Network net = generate_multi_as(o);
  std::vector<NodeId> dests;
  for (NodeId h = net.num_routers; h < static_cast<NodeId>(net.nodes.size());
       ++h) {
    dests.push_back(net.nodes[static_cast<std::size_t>(h)].attach_router);
  }
  ForwardingPlane::Options fo;
  fo.stub_default_routing = false;
  const ForwardingPlane fp = ForwardingPlane::build_multi_as(net, dests, fo);
  // Paths still terminate without default routing.
  const NodeId h1 = net.num_routers;
  const NodeId h2 = static_cast<NodeId>(net.nodes.size()) - 1;
  if (fp.reachable(h1, h2)) {
    NodeId cur = net.nodes[static_cast<std::size_t>(h1)].attach_router;
    int hops = 0;
    while (hops < 200) {
      const LinkId l = fp.next_link(cur, h2);
      ASSERT_NE(l, kInvalidLink);
      const NetLink& link = net.links[static_cast<std::size_t>(l)];
      const NodeId next = link.a == cur ? link.b : link.a;
      ++hops;
      if (next == h2) return;
      cur = next;
    }
    FAIL() << "did not arrive";
  }
}

}  // namespace
}  // namespace massf
