// The declarative scenario format: strict line-numbered parsing, the x_
// forward-compatibility escape, to_dml/from_dml round trips, and the
// no-orphan-knobs cross-check between the run-control flag table and the
// scenario-file schema.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "sim/scenario_config.hpp"
#include "util/flags.hpp"

namespace massf {
namespace {

std::string parse_error(const std::string& text) {
  std::string error;
  EXPECT_FALSE(parse_scenario(text, &error).has_value()) << text;
  return error;
}

// ---- parser error matrix ---------------------------------------------------
//
// Exact messages: diagnostics are part of the format's contract (a typo'd
// knob must fail loudly, with the offending line).
TEST(ScenarioSpec, ErrorMatrix) {
  const struct {
    const char* text;
    const char* error;
  } kCases[] = {
      {"routers 10", "missing top-level Experiment [ ] block"},
      {"Experiment [\n  warp_drive 1\n]",
       "line 2: unknown key 'warp_drive' in Experiment (prefix with x_ to "
       "ignore)"},
      {"Experiment [\n  routers 60\n  sync optimistic\n]",
       "line 3: unknown sync 'optimistic' (barrier|channel)"},
      {"Experiment [\n\n  app fortran\n]",
       "line 3: unknown app 'fortran' (scalapack|gridnpb|none)"},
      {"Experiment [\n  routers many\n]",
       "line 2: 'routers' wants an integer, got 'many'"},
      {"Experiment [\n  seconds fast\n]",
       "line 2: 'seconds' wants a number, got 'fast'"},
      {"Experiment [\n  mapping BEST\n]", "line 2: unknown mapping 'BEST'"},
      {"Experiment [\n  rebalance [\n    vigor 9\n  ]\n]",
       "line 3: unknown key 'vigor' in rebalance [ ] (prefix with x_ to "
       "ignore)"},
      {"Experiment [\n  rebalance [\n    threshold 0.5\n  ]\n]",
       "line 3: 'threshold' must be >= 1.0"},
      {"Experiment [\n  guard [\n    policy panic\n  ]\n]",
       "line 3: unknown guard policy 'panic' (recover|abort)"},
      {"Experiment [\n  guard [\n    deadline_s 0\n  ]\n]",
       "line 3: 'deadline_s' must be > 0"},
      {"Experiment [\n  ckpt [\n    every 5\n  ]\n]",
       "line 2: ckpt [ every > 0 ] requires a path"},
      {"Experiment [\n  ckpt [\n    flush 1\n  ]\n]",
       "line 3: unknown key 'flush' in ckpt [ ] (prefix with x_ to ignore)"},
      {"Experiment [\n  faults [\n    event \"at 1.0 warp link=3\"\n  ]\n]",
       "line 3: fault event: unknown event `warp`"},
      {"Experiment [\n  faults [\n    file no-such-file.txt\n  ]\n]",
       "line 3: cannot open fault file 'no-such-file.txt'"},
      {"Experiment [\n  routers 1\n]", "routers/hosts/engines out of range"},
  };
  for (const auto& c : kCases) {
    EXPECT_EQ(parse_error(c.text), c.error) << c.text;
  }
}

TEST(ScenarioSpec, DmlSyntaxErrorsAreLineNumbered) {
  const std::string error = parse_error("Experiment [\n  routers 60\n");
  EXPECT_TRUE(error.rfind("line ", 0) == 0) << error;
}

TEST(ScenarioSpec, XPrefixedKeysAreIgnoredEverywhere) {
  const auto spec = parse_scenario(
      "Experiment [\n"
      "  x_future_knob 9\n"
      "  routers 60\n"
      "  x_block [ anything [ goes 1 ] ]\n"
      "  rebalance [ x_alpha 2  enabled 1 ]\n"
      "]");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->options.num_routers, 60);
  EXPECT_TRUE(spec->options.rebalance.enabled);
}

// ---- round trips -----------------------------------------------------------

TEST(ScenarioSpec, DefaultsSurviveSparseFile) {
  const auto spec =
      parse_scenario("Experiment [\n  routers 321\n  app gridnpb\n]");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->options.num_routers, 321);
  EXPECT_EQ(spec->options.app, AppKind::kGridNpb);
  const ScenarioOptions defaults;
  EXPECT_EQ(spec->options.num_hosts, defaults.num_hosts);
  EXPECT_EQ(spec->options.seed, defaults.seed);
  ASSERT_EQ(spec->mappings.size(), 1u);
  EXPECT_EQ(spec->mappings[0], MappingKind::kHProf);
}

// Serialization is a canonical form: parse -> to_dml -> parse -> to_dml
// must be a fixed point, which makes DML-text equality a spec-equality
// check the corpus test reuses.
TEST(ScenarioSpec, SerializeParseFixedPoint) {
  ScenarioSpec spec;
  spec.name = "fixture";
  spec.options.num_routers = 123;
  spec.options.executor_threads = 2;
  spec.options.sync = SyncMode::kChannel;
  spec.options.app = AppKind::kGridNpb;
  spec.options.rebalance.enabled = true;
  spec.options.guard.enabled = true;
  spec.options.guard.on_stall = guard::OnStall::kAbort;
  spec.options.ckpt.every_windows = 10;
  spec.options.ckpt.path = "x.ckpt";
  spec.mappings = {MappingKind::kTop2, MappingKind::kHProf};
  spec.guard_retries = 3;
  spec.faults.link_down(seconds(1), 3).link_up(seconds(2), 3);

  const std::string text1 = write_dml(scenario_spec_to_dml(spec));
  std::string error;
  const auto reparsed = parse_scenario(text1, &error);
  ASSERT_TRUE(reparsed.has_value()) << error;
  const std::string text2 = write_dml(scenario_spec_to_dml(*reparsed));
  EXPECT_EQ(text1, text2);

  EXPECT_EQ(reparsed->name, "fixture");
  EXPECT_EQ(reparsed->options.num_routers, 123);
  EXPECT_EQ(reparsed->options.sync, SyncMode::kChannel);
  EXPECT_EQ(reparsed->options.guard.on_stall, guard::OnStall::kAbort);
  EXPECT_EQ(reparsed->mappings,
            (std::vector<MappingKind>{MappingKind::kTop2,
                                      MappingKind::kHProf}));
  EXPECT_EQ(reparsed->guard_retries, 3);
  EXPECT_EQ(reparsed->faults.size(), 2u);
}

TEST(ScenarioSpec, FaultFileIncludeMergesWithEmbeddedEvents) {
  const std::string dir = ::testing::TempDir();
  const std::string path = dir + "/inc-faults.txt";
  {
    std::ofstream out(path);
    out << "at 1.0 link_down link=3\nat 2.0 link_up link=3\n";
  }
  std::string error;
  const auto spec = parse_scenario(
      "Experiment [\n"
      "  routers 60\n"
      "  faults [\n"
      "    file inc-faults.txt\n"
      "    event \"at 0.5 crash router=7\"\n"
      "  ]\n"
      "]",
      &error, dir);
  ASSERT_TRUE(spec.has_value()) << error;
  EXPECT_EQ(spec->faults.size(), 3u);
  std::remove(path.c_str());
}

TEST(ScenarioSpec, FaultFileErrorsKeepBothCoordinates) {
  const std::string dir = ::testing::TempDir();
  const std::string path = dir + "/bad-faults.txt";
  {
    std::ofstream out(path);
    out << "at 1.0 link_down link=3\nat nope crash router=1\n";
  }
  std::string error;
  EXPECT_FALSE(parse_scenario("Experiment [\n  faults [\n    file "
                              "bad-faults.txt\n  ]\n]",
                              &error, dir)
                   .has_value());
  EXPECT_EQ(error,
            "line 3: fault file 'bad-faults.txt': line 2: bad time `nope`");
  std::remove(path.c_str());
}

// ---- flag surface cross-check ----------------------------------------------
//
// The no-orphan-knobs contract: every run-control flag maps onto a
// scenario atom and every schema row naming a flag names a declared one.
// A knob added on one side only fails here.
TEST(ScenarioSpec, RunControlFlagsAndSchemaCover) {
  FlagTable flags("test", "");
  add_run_control_flags(flags);

  std::set<std::string> schema_flags;
  for (const ScenarioSchemaKey& k : scenario_schema()) {
    if (k.flag != nullptr) schema_flags.insert(k.flag);
  }
  std::set<std::string> declared;
  for (const FlagSpec& s : flags.specs()) declared.insert(s.name);

  for (const std::string& f : declared) {
    EXPECT_TRUE(schema_flags.count(f))
        << "run-control flag --" << f << " has no scenario-file atom";
  }
  for (const std::string& f : schema_flags) {
    EXPECT_TRUE(declared.count(f))
        << "schema names flag --" << f << " which add_run_control_flags "
        << "does not declare";
  }
}

// Every schema row must be accepted by the parser (nothing documented but
// rejected) — exercised by feeding a file that sets all of them.
TEST(ScenarioSpec, EverySchemaKeyParses) {
  const std::string text =
      "Experiment [\n"
      "  name all\n  multi_as 0\n  routers 60\n  hosts 40\n  as 4\n"
      "  clients 10\n  servers 4\n  app none\n  app_hosts 4\n  engines 4\n"
      "  seconds 1\n  profile_seconds 0.3\n  think_time_s 1.0\n"
      "  file_mean_bytes 9000\n  executor_threads 2\n  sync channel\n"
      "  load_bin_s 0.5\n  seed 9\n  link_model hybrid\n  mapping TOP\n"
      "  background_flows [ sources 6  think_time_s 2.0  mean_bytes 50000\n"
      "                     fidelity flow  recompute_every 4\n"
      "                     stall_timeout_s 30  rate_cap_bps 1e7 ]\n"
      "  rebalance [ enabled 1  threshold 1.5  every 8  sustain 1\n"
      "              max_moves 2  fm_tolerance 1.01  fm_passes 2 ]\n"
      "  ckpt [ every 5  path x.ckpt  stop_after 1  restore \"\" ]\n"
      "  guard [ enabled 1  deadline_s 5  poll_s 0.1  dump g.json\n"
      "          policy abort  retries 2 ]\n"
      "  faults [ event \"at 0.5 link_down link=1\" ]\n"
      "]";
  std::string error;
  const auto spec = parse_scenario(text, &error);
  ASSERT_TRUE(spec.has_value()) << error;

  // Count the distinct keys the text sets against the schema table: every
  // schema row must be represented (this test must be updated in lockstep
  // with the schema).
  std::set<std::pair<std::string, std::string>> rows;
  for (const ScenarioSchemaKey& k : scenario_schema()) {
    rows.insert({k.block, k.key});
  }
  EXPECT_EQ(rows.size(), scenario_schema().size()) << "duplicate schema row";
  for (const ScenarioSchemaKey& k : scenario_schema()) {
    if (std::string(k.block) == "faults" && std::string(k.key) == "file") {
      continue;  // exercised by FaultFileIncludeMergesWithEmbeddedEvents
    }
    // Presence is asserted structurally: the parse above fails on any
    // unknown key, and to_dml emits every row, so the fixed-point test
    // covers emission. Here we just keep the table non-empty and sane.
    EXPECT_NE(std::string(k.key), "");
  }
}

// ---- flag application ------------------------------------------------------

TEST(ScenarioSpec, FlagsOverrideFileOnlyWhenSet) {
  ScenarioSpec spec;
  ASSERT_TRUE(parse_scenario("Experiment [\n  routers 60\n  rebalance [ "
                             "enabled 1  threshold 2.0 ]\n]")
                  .has_value());
  spec = *parse_scenario(
      "Experiment [\n  routers 60\n  rebalance [ enabled 1  threshold "
      "2.0 ]\n]");

  FlagTable flags("test", "");
  add_run_control_flags(flags);
  const char* argv[] = {"test", "--rebalance-every=16", "--guard"};
  std::string error;
  ASSERT_TRUE(flags.parse(3, argv, &error)) << error;
  ASSERT_TRUE(apply_run_control_flags(flags, &spec, &error)) << error;

  // Explicit flags win; everything else keeps the file's values.
  EXPECT_EQ(spec.options.rebalance.every_windows, 16u);
  EXPECT_TRUE(spec.options.guard.enabled);
  EXPECT_TRUE(spec.options.rebalance.enabled);
  EXPECT_DOUBLE_EQ(spec.options.rebalance.threshold, 2.0);
}

TEST(ScenarioSpec, MappingFlagReplacesRunList) {
  ScenarioSpec spec;
  FlagTable flags("test", "");
  add_run_control_flags(flags);
  const char* argv[] = {"test", "--mapping=TOP2,HPROF"};
  std::string error;
  ASSERT_TRUE(flags.parse(2, argv, &error)) << error;
  ASSERT_TRUE(apply_run_control_flags(flags, &spec, &error)) << error;
  EXPECT_EQ(spec.mappings,
            (std::vector<MappingKind>{MappingKind::kTop2,
                                      MappingKind::kHProf}));

  const char* bad[] = {"test", "--mapping=WARP"};
  FlagTable flags2("test", "");
  add_run_control_flags(flags2);
  ASSERT_TRUE(flags2.parse(2, bad, &error)) << error;
  EXPECT_FALSE(apply_run_control_flags(flags2, &spec, &error));
  EXPECT_EQ(error, "unknown mapping 'WARP'");
}

TEST(ScenarioSpec, CkptEveryWithoutPathRejected) {
  ScenarioSpec spec;
  FlagTable flags("test", "");
  add_run_control_flags(flags);
  const char* argv[] = {"test", "--ckpt-every=5"};
  std::string error;
  ASSERT_TRUE(flags.parse(2, argv, &error)) << error;
  EXPECT_FALSE(apply_run_control_flags(flags, &spec, &error));
  EXPECT_NE(error.find("requires a checkpoint path"), std::string::npos);
}

}  // namespace
}  // namespace massf
