// Online rebalancing (lb/rebalance.hpp) and the EngineHooks boundary
// contract it plugs into.
//
// Coverage:
//  * router_mobile / migrate_router invariants on hand-built networks;
//  * EngineHooks firing order (barrier -> rebalance -> ckpt) and the
//    deprecated one-PR shims;
//  * the controller's trigger/debounce/improvement behavior on an
//    imbalance-ramp ring (miniature of bench/bench_rebalance.cpp);
//  * a >= 24-seed differential fuzz: with rebalancing live, the sequential
//    and threaded executors must stay bit-identical on the full signature
//    (RunStats incl. modeled times + massf.metrics.v1 JSON modulo the
//    executor-identity gauge);
//  * checkpoint/restore through the Scenario facade with rebalancing on —
//    the "lb.rebalance" participant must resume the control loop so the
//    restored run makes the decisions the uninterrupted one would have.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "lb/mapping.hpp"
#include "lb/profile.hpp"
#include "lb/rebalance.hpp"
#include "net/netsim.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "routing/forwarding.hpp"
#include "sim/scenario.hpp"
#include "topology/network.hpp"

namespace massf {
namespace {

std::uint64_t double_bits(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

void expect_same_stats(const RunStats& a, const RunStats& b) {
  EXPECT_EQ(a.total_events, b.total_events);
  EXPECT_EQ(a.num_windows, b.num_windows);
  EXPECT_EQ(a.events_per_lp, b.events_per_lp);
  EXPECT_EQ(a.end_vtime, b.end_vtime);
  EXPECT_EQ(a.cross_lp_events, b.cross_lp_events);
  EXPECT_EQ(a.merge_batches, b.merge_batches);
  EXPECT_EQ(double_bits(a.modeled_wall_s), double_bits(b.modeled_wall_s));
  EXPECT_EQ(double_bits(a.modeled_sync_s), double_bits(b.modeled_sync_s));
  EXPECT_EQ(double_bits(a.modeled_migrate_s),
            double_bits(b.modeled_migrate_s));
  ASSERT_EQ(a.busy_s.size(), b.busy_s.size());
  for (std::size_t i = 0; i < a.busy_s.size(); ++i) {
    EXPECT_EQ(double_bits(a.busy_s[i]), double_bits(b.busy_s[i])) << i;
  }
}

/// The worker-count gauge and the pdes.sync.* protocol counters describe
/// the executor (which sync protocol ran and what it did), not the
/// simulation — the legitimate metrics differences between executors (see
/// bench/bench_rebalance.cpp).
std::string strip_executor_identity(std::string json) {
  for (const char* key : {"\"pdes.sched.threads\":", "\"pdes.sync."}) {
    for (auto pos = json.find(key); pos != std::string::npos;
         pos = json.find(key, pos)) {
      auto end = json.find_first_of(",}\n", pos + std::strlen(key));
      if (end == std::string::npos) end = json.size();
      json.erase(pos, end - pos);
    }
  }
  return json;
}

void add_link(Network& net, NodeId a, NodeId b, SimTime latency,
              double bw_bps = 10e9) {
  NetLink l;
  l.a = a;
  l.b = b;
  l.latency = latency;
  l.bandwidth_bps = bw_bps;
  net.links.push_back(l);
}

NodeId add_host(Network& net, NodeId router) {
  NetNode host;
  host.kind = NodeKind::kHost;
  host.attach_router = router;
  net.nodes.push_back(host);
  const NodeId id = static_cast<NodeId>(net.nodes.size()) - 1;
  add_link(net, id, router, microseconds(20), 1e9);
  return id;
}

// ---- mobility and migration -------------------------------------------------

TEST(RouterMobile, HostsAndFastLinksPin) {
  // Chain 0 -(1ms)- 1 -(0.5ms)- 2 -(1ms)- 3, host on router 3. The
  // sub-lookahead 1-2 link stays inside LP 0 so the conservative contract
  // holds with lookahead = 1 ms.
  Network net;
  net.num_routers = 4;
  net.nodes.assign(4, NetNode{});
  add_link(net, 0, 1, milliseconds(1));
  add_link(net, 1, 2, microseconds(500));
  add_link(net, 2, 3, milliseconds(1));
  add_host(net, 3);
  net.build_adjacency();
  ASSERT_EQ(net.validate(), "");

  const std::vector<NodeId> dests{0, 3};
  const ForwardingPlane fp = ForwardingPlane::build_flat(net, dests);
  const std::vector<LpId> map{0, 0, 0, 1};
  EngineOptions eo;
  eo.lookahead = milliseconds(1);
  eo.end_time = milliseconds(10);
  Engine engine(eo);
  NetSim sim(net, fp, map, engine, NetSimOptions{});

  const SimTime la = milliseconds(1);
  EXPECT_TRUE(sim.router_mobile(0, la));   // host-free, only 1 ms links
  EXPECT_FALSE(sim.router_mobile(1, la));  // 0.5 ms link < lookahead
  EXPECT_FALSE(sim.router_mobile(2, la));  // same fast link
  EXPECT_FALSE(sim.router_mobile(3, la));  // host attached
}

TEST(MigrateRouter, FlipsOwnershipAndMovesPendingEvents) {
  // Chain h4 - 0 - 1 - 2 - h5: every datagram crosses transit router 1,
  // which is host-free with 1 ms links on both sides (mobile). A barrier
  // hook mid-run rehomes it from LP 0 to LP 1; delivery totals must match
  // the undisturbed reference run.
  Network net;
  net.num_routers = 3;
  net.nodes.assign(3, NetNode{});
  add_link(net, 0, 1, milliseconds(1));
  add_link(net, 1, 2, milliseconds(1));
  const NodeId ha = add_host(net, 0);
  const NodeId hb = add_host(net, 2);
  net.build_adjacency();
  ASSERT_EQ(net.validate(), "");
  const std::vector<NodeId> dests{0, 2};
  const ForwardingPlane fp = ForwardingPlane::build_flat(net, dests);

  const auto run = [&](bool migrate, MigrationStats* out_stats,
                       LpId* lp_after) {
    EngineOptions eo;
    eo.lookahead = milliseconds(1);
    eo.end_time = milliseconds(40);
    Engine engine(eo);
    const std::vector<LpId> map{0, 0, 1};
    NetSim sim(net, fp, map, engine, NetSimOptions{});
    for (SimTime t = microseconds(100); t < eo.end_time;
         t += microseconds(400)) {
      sim.send_udp(engine, t, ha, hb, 600, 0);
      sim.send_udp(engine, t + microseconds(150), hb, ha, 600, 0);
    }
    EXPECT_EQ(sim.lp_of(1), 0);
    bool done = false;
    if (migrate) {
      engine.hooks().barrier.push_back(
          [&](Engine& eng, SimTime floor) {
            if (done || floor < milliseconds(15)) return;
            done = true;
            ASSERT_TRUE(sim.router_mobile(1, eng.options().lookahead));
            const MigrationStats ms = sim.migrate_router(eng, 1, 1);
            if (out_stats != nullptr) *out_stats = ms;
          });
    }
    engine.run();
    if (lp_after != nullptr) *lp_after = sim.lp_of(1);
    return sim.totals();
  };

  const NetSim::Counters want = run(false, nullptr, nullptr);
  MigrationStats ms;
  LpId lp_after = -1;
  const NetSim::Counters got = run(true, &ms, &lp_after);

  EXPECT_EQ(lp_after, 1);  // ownership flipped
  // The stream keeps router 1's inbox non-empty at every boundary: the
  // migration must have carried pending arrivals over the wire format.
  EXPECT_GT(ms.events, 0u);
  EXPECT_GT(ms.bytes, 0u);
  // Rehoming must not lose, duplicate, or reroute a single packet.
  EXPECT_EQ(want.udp_delivered, got.udp_delivered);
  EXPECT_EQ(want.forwarded, got.forwarded);
  EXPECT_EQ(want.dropped_queue, got.dropped_queue);
}

// ---- EngineHooks contract ---------------------------------------------------

class NullLp : public LogicalProcess {
 public:
  void handle(Engine&, const Event&) override {}
};

/// One engine with a self-rescheduling tick so every window has work.
struct TickRig {
  explicit TickRig(std::uint64_t windows) {
    EngineOptions eo;
    eo.lookahead = milliseconds(1);
    eo.end_time = windows * milliseconds(1);
    engine = std::make_unique<Engine>(eo);
    struct Tick : LogicalProcess {
      void handle(Engine& e, const Event& ev) override {
        e.schedule(ev.lp, ev.time + microseconds(250), 1);
      }
    };
    const LpId lp = engine->add_lp(std::make_unique<Tick>());
    engine->schedule(lp, 0, 1);
  }
  std::unique_ptr<Engine> engine;
};

TEST(EngineHooks, FiringOrderBarrierRebalanceCkpt) {
  TickRig rig(/*windows=*/8);
  // One entry per boundary; the first barrier hook opens the entry so the
  // per-boundary stage sequence is recorded exactly as fired.
  std::vector<std::string> boundaries;
  rig.engine->hooks().barrier.push_back([&boundaries](Engine&, SimTime) {
    boundaries.emplace_back("a");
  });
  rig.engine->hooks().barrier.push_back(
      [&boundaries](Engine&, SimTime) { boundaries.back() += 'b'; });
  rig.engine->hooks().rebalance_every = 2;
  rig.engine->hooks().rebalance = [&boundaries](Engine&, SimTime) {
    boundaries.back() += 'r';
  };
  rig.engine->hooks().ckpt_every = 4;
  rig.engine->hooks().ckpt = [&boundaries](Engine&, SimTime) {
    boundaries.back() += 'c';
  };
  const RunStats stats = rig.engine->run();
  // One boundary opens each window, carrying the completed-window count w:
  // barrier hooks in registration order at every boundary, the rebalance
  // stage when w > 0 and w % 2 == 0, the ckpt stage after it when w > 0
  // and w % 4 == 0 (stage 3 snapshots post-rebalance state).
  ASSERT_EQ(boundaries.size(), stats.num_windows);
  ASSERT_GE(boundaries.size(), 8u);
  for (std::size_t w = 0; w < boundaries.size(); ++w) {
    std::string want = "ab";
    if (w > 0 && w % 2 == 0) want += 'r';
    if (w > 0 && w % 4 == 0) want += 'c';
    EXPECT_EQ(boundaries[w], want) << "boundary w=" << w;
  }
}

TEST(EngineHooks, DeprecatedShimsComposeWithHooksStruct) {
  TickRig rig(/*windows=*/3);
  std::string order;
  // Old-style registration must land in the same struct and fire in the
  // documented stages alongside direct hooks() use.
  rig.engine->set_barrier_hook(
      [&order](Engine&, SimTime) { order += 'x'; });
  rig.engine->add_barrier_hook(
      [&order](Engine&, SimTime) { order += 'y'; });
  rig.engine->set_ckpt_hook(1,
                            [&order](Engine&, SimTime) { order += 'c'; });
  EXPECT_EQ(rig.engine->hooks().barrier.size(), 2u);
  EXPECT_EQ(rig.engine->hooks().ckpt_every, 1u);
  rig.engine->run();
  // Boundaries w=0 (ckpt skips w==0), w=1, w=2 — shims fire through the
  // same staged path as direct hooks() registration.
  EXPECT_EQ(order, "xyxycxyc");
}

// ---- controller behavior on an imbalance ramp -------------------------------

/// Miniature of the bench topology: a ring of `pods` gateways (hosts
/// attached) each followed by `transit` host-free routers; uniform
/// router-router latency keeps every transit router mobile.
struct Ring {
  std::int32_t pods = 4;
  std::int32_t transit = 2;
  std::int32_t hosts = 2;
  SimTime latency = microseconds(400);

  std::int32_t stride() const { return 1 + transit; }
  NodeId gateway(std::int32_t pod) const { return pod * stride(); }

  Network build() const {
    Network net;
    net.num_routers = pods * stride();
    net.nodes.assign(static_cast<std::size_t>(net.num_routers), NetNode{});
    for (std::int32_t pod = 0; pod < pods; ++pod) {
      NodeId prev = gateway(pod);
      for (std::int32_t t = 0; t < transit; ++t) {
        add_link(net, prev, gateway(pod) + 1 + t, latency);
        prev = gateway(pod) + 1 + t;
      }
      add_link(net, prev, gateway((pod + 1) % pods), latency);
    }
    for (std::int32_t pod = 0; pod < pods; ++pod) {
      for (std::int32_t h = 0; h < hosts; ++h) add_host(net, gateway(pod));
    }
    net.build_adjacency();
    MASSF_CHECK(net.validate().empty());
    return net;
  }

  NodeId host_of(const Network& net, std::int32_t pod, std::int32_t h) const {
    return net.num_routers + pod * hosts + h;
  }
};

struct FuzzResult {
  RunStats stats;
  RebalanceController::Totals totals;
  std::string metrics_json;
};

/// One rebalanced run of a seed-shaped rotating-hot-sector workload.
FuzzResult fuzz_run(std::uint64_t seed, std::int32_t threads) {
  Ring ring;
  ring.pods = 4 + static_cast<std::int32_t>(seed % 3);
  ring.transit = 2 + static_cast<std::int32_t>(seed % 2);
  const Network net = ring.build();
  std::vector<NodeId> dests;
  for (std::int32_t pod = 0; pod < ring.pods; ++pod) {
    dests.push_back(ring.gateway(pod));
  }
  const ForwardingPlane fp = ForwardingPlane::build_flat(net, dests);
  const std::int32_t engines = 2 + static_cast<std::int32_t>(seed % 3);
  const std::vector<LpId> map = naive_mapping(net, engines);

  ClusterModel cluster;
  cluster.num_engine_nodes = engines;
  EngineOptions eo;
  eo.lookahead = ring.latency;
  eo.cost_per_event_s = cluster.cost_per_event_s;
  eo.sync_cost_s = cluster.sync_cost_s();
  const SimTime phase_len = milliseconds(20);
  const std::int32_t phases = 3;
  eo.end_time = phases * phase_len;
  Engine engine(eo);
  NetSimOptions no;
  no.collect_node_profile = true;
  NetSim sim(net, fp, map, engine, no);

  const SimTime hot = microseconds(300 + 50 * static_cast<SimTime>(seed % 5));
  for (std::int32_t p = 0; p < phases; ++p) {
    const auto src_pod =
        static_cast<std::int32_t>((seed + p * (1 + seed % 2)) % ring.pods);
    const auto dst_pod = (src_pod + ring.pods / 2) % ring.pods;
    for (std::int32_t h = 0; h < ring.hosts; ++h) {
      const NodeId src = ring.host_of(net, src_pod, h);
      const NodeId dst = ring.host_of(net, dst_pod, h);
      for (SimTime t = p * phase_len + h * microseconds(25);
           t < (p + 1) * phase_len; t += hot) {
        sim.send_udp(engine, t, src, dst, 800, 1);
      }
    }
  }
  for (std::int32_t pod = 0; pod < ring.pods; ++pod) {  // background
    const NodeId src = ring.host_of(net, pod, 0);
    const NodeId dst = ring.host_of(net, (pod + 1) % ring.pods, 1);
    for (SimTime t = microseconds(500 + 100 * static_cast<SimTime>(pod));
         t < eo.end_time; t += milliseconds(4)) {
      sim.send_udp(engine, t, src, dst, 400, 0);
    }
  }

  RebalanceOptions ro;
  ro.enabled = true;
  ro.every_windows = 8;
  ro.threshold = 1.10;
  ro.sustain = 1;
  ro.max_moves = 4;
  RebalanceController rc(sim, cluster, ro);
  rc.arm(engine);
  obs::Registry registry;
  engine.set_registry(&registry);

  FuzzResult r;
  r.stats = threads > 0 ? engine.run_threaded(threads) : engine.run();
  r.totals = rc.totals();
  sim.publish_metrics(registry);
  rc.publish_metrics(registry);
  r.metrics_json = obs::to_json(registry);
  return r;
}

TEST(RebalanceController, TriggersAndImprovesImbalance) {
  const FuzzResult r = fuzz_run(/*seed=*/1, /*threads=*/0);
  EXPECT_GT(r.totals.checks, 0u);
  ASSERT_GT(r.totals.triggers, 0u);
  EXPECT_GT(r.totals.moves, 0u);
  EXPECT_GT(r.totals.events_moved, 0u);
  EXPECT_GT(r.totals.bytes_moved, 0u);
  // The remap must actually flatten the hot/cold pair it targeted.
  EXPECT_LT(r.totals.imbalance_after, r.totals.imbalance_before);
  // Honest accounting: migration cost is charged into the modeled clock.
  EXPECT_GT(r.totals.modeled_cost_s, 0.0);
  EXPECT_EQ(double_bits(r.stats.modeled_migrate_s),
            double_bits(r.totals.modeled_cost_s));
  // And exported: the metrics block must carry the lb.rebalance.* schema.
  EXPECT_NE(r.metrics_json.find("\"lb.rebalance.moves\""), std::string::npos);
  EXPECT_NE(r.metrics_json.find("\"lb.rebalance.imbalance_after\""),
            std::string::npos);
}

// ---- differential fuzz: executors must agree with rebalancing live ----------

TEST(RebalanceFuzz, SequentialVsThreadedFullSignature) {
  std::uint64_t total_moves = 0;
  for (std::uint64_t seed = 0; seed < 24; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const FuzzResult seq = fuzz_run(seed, 0);
    total_moves += seq.totals.moves;
    for (const std::int32_t threads : {2, 4}) {
      SCOPED_TRACE("threads " + std::to_string(threads));
      const FuzzResult thr = fuzz_run(seed, threads);
      expect_same_stats(seq.stats, thr.stats);
      EXPECT_EQ(seq.totals.moves, thr.totals.moves);
      EXPECT_EQ(seq.totals.events_moved, thr.totals.events_moved);
      EXPECT_EQ(seq.totals.bytes_moved, thr.totals.bytes_moved);
      EXPECT_EQ(strip_executor_identity(seq.metrics_json),
                strip_executor_identity(thr.metrics_json));
    }
  }
  // The sweep is only meaningful if migration actually ran somewhere.
  EXPECT_GT(total_moves, 0u);
}

// ---- Scenario: checkpoint/restore with the control loop live ----------------

TEST(ScenarioRebalance, CkptRestoreMatchesUninterrupted) {
  const std::string path = ::testing::TempDir() + "/rebalance_scn.ckpt";
  ScenarioOptions base;
  base.num_routers = 120;
  base.num_hosts = 60;
  base.num_clients = 20;
  base.num_servers = 6;
  base.num_engines = 4;
  base.end_time = seconds(2);
  base.profile_end_time = seconds(1);
  base.seed = 23;
  base.rebalance.enabled = true;
  base.rebalance.every_windows = 8;
  base.rebalance.threshold = 1.05;
  base.rebalance.sustain = 1;

  obs::Registry ref_registry;
  ScenarioOptions oref = base;
  oref.registry = &ref_registry;
  Scenario ref(oref);
  const ExperimentResult want = ref.run(MappingKind::kTop2);
  const std::string ref_json = obs::to_json(ref_registry);
  // The control loop was live (the stage fired and published).
  EXPECT_NE(ref_json.find("\"lb.rebalance.checks\""), std::string::npos);

  Scenario resumed(base);
  CkptOptions save;
  save.every_windows = 32;
  save.path = path;
  save.stop_after = true;
  resumed.set_ckpt(save);
  const ExperimentResult cut = resumed.run(MappingKind::kTop2);
  ASSERT_EQ(cut.stats.num_windows, 32u);
  ASSERT_LT(cut.stats.num_windows, want.stats.num_windows);

  CkptOptions load;
  load.restore_path = path;
  resumed.set_ckpt(load);
  const ExperimentResult got = resumed.run(MappingKind::kTop2);

  // The "lb.rebalance" participant restored snapshot/debounce/tallies, so
  // the resumed run repeats the uninterrupted run's decisions exactly —
  // including any migrations after the cut (modeled_migrate_s is compared
  // bitwise inside expect_same_stats).
  expect_same_stats(want.stats, got.stats);
  EXPECT_EQ(want.counters.udp_delivered, got.counters.udp_delivered);
  EXPECT_EQ(want.counters.delivered, got.counters.delivered);
  EXPECT_EQ(want.counters.forwarded, got.counters.forwarded);
}

}  // namespace
}  // namespace massf
