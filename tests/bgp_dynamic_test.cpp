#include <gtest/gtest.h>

#include <memory>

#include "net/netsim.hpp"
#include "routing/bgp.hpp"
#include "routing/bgp_dynamic.hpp"
#include "routing/forwarding.hpp"
#include "topology/mabrite.hpp"
#include "traffic/manager.hpp"

namespace massf {
namespace {

struct Fixture {
  explicit Fixture(std::int32_t num_as = 12, std::uint64_t seed = 5,
                   std::int32_t lps = 1, SimTime end = seconds(30),
                   const BgpDynamicOptions& bgp_opts = BgpDynamicOptions{}) {
    MaBriteOptions o;
    o.num_as = num_as;
    o.routers_per_as = 6;
    o.num_hosts = 10;
    o.seed = seed;
    net = generate_multi_as(o);
    speaker_hosts = add_bgp_speaker_hosts(net);

    std::vector<NodeId> dests;
    for (NodeId h : speaker_hosts) {
      dests.push_back(net.nodes[static_cast<std::size_t>(h)].attach_router);
    }
    fp = std::make_unique<ForwardingPlane>(
        ForwardingPlane::build_multi_as(net, dests));

    std::vector<LpId> map(static_cast<std::size_t>(net.num_routers), 0);
    SimTime lookahead = milliseconds(10);
    if (lps > 1) {
      // Partition by AS blocks; lookahead = min cross-LP link latency.
      for (NodeId r = 0; r < net.num_routers; ++r) {
        const AsId a = net.nodes[static_cast<std::size_t>(r)].as_id;
        map[static_cast<std::size_t>(r)] = a % lps;
      }
      lookahead = kSimTimeMax;
      for (const NetLink& l : net.links) {
        if (net.is_router(l.a) && net.is_router(l.b) &&
            map[static_cast<std::size_t>(l.a)] !=
                map[static_cast<std::size_t>(l.b)]) {
          lookahead = std::min(lookahead, l.latency);
        }
      }
    }
    EngineOptions eo;
    eo.lookahead = lookahead;
    eo.end_time = end;
    engine = std::make_unique<Engine>(eo);
    sim = std::make_unique<NetSim>(net, *fp, map, *engine, NetSimOptions{});
    manager = std::make_unique<TrafficManager>(*sim);
    auto speakers_ptr =
        std::make_unique<BgpSpeakers>(net, speaker_hosts, bgp_opts);
    speakers = speakers_ptr.get();
    manager->add(TrafficKind::kBgp, std::move(speakers_ptr));
  }

  void run(bool threaded = false) {
    manager->start(*engine, *sim);
    if (threaded) {
      engine->run_threaded(2);
    } else {
      engine->run();
    }
  }

  Network net;
  std::vector<NodeId> speaker_hosts;
  std::unique_ptr<ForwardingPlane> fp;
  std::unique_ptr<Engine> engine;
  std::unique_ptr<NetSim> sim;
  std::unique_ptr<TrafficManager> manager;
  BgpSpeakers* speakers = nullptr;
};

TEST(BgpDynamic, SpeakerHostsAttached) {
  Fixture f;
  ASSERT_EQ(f.speaker_hosts.size(), static_cast<std::size_t>(f.net.num_as()));
  for (AsId a = 0; a < f.net.num_as(); ++a) {
    const NodeId h = f.speaker_hosts[static_cast<std::size_t>(a)];
    EXPECT_TRUE(f.net.is_host(h));
    EXPECT_EQ(f.net.nodes[static_cast<std::size_t>(h)].as_id, a);
  }
  EXPECT_EQ(f.net.validate(), "");
}

TEST(BgpDynamic, ConvergesToStaticSolver) {
  Fixture f(12, 5);
  f.run();
  ASSERT_GT(f.speakers->updates_sent(), 0u);
  ASSERT_GT(f.speakers->last_change(), 0);
  // The protocol's adopted tables must equal the static fixed point.
  BgpSolver solver(f.net.num_as(), f.net.as_adjacency);
  solver.solve();
  for (AsId a = 0; a < f.net.num_as(); ++a) {
    for (AsId b = 0; b < f.net.num_as(); ++b) {
      if (a == b) continue;
      const BgpRoute& stat = solver.route(a, b);
      const BgpRoute dyn = f.speakers->best_route(a, b);
      EXPECT_EQ(dyn.next_hop_as, stat.next_hop_as) << a << "->" << b;
      if (stat.next_hop_as >= 0) {
        EXPECT_EQ(dyn.path_len, stat.path_len) << a << "->" << b;
        EXPECT_EQ(f.speakers->as_path(a, b), solver.as_path(a, b))
            << a << "->" << b;
      }
    }
  }
}

TEST(BgpDynamic, ConvergesOnDifferentTopologies) {
  for (const std::uint64_t seed : {11ull, 23ull, 99ull}) {
    Fixture f(10, seed);
    f.run();
    BgpSolver solver(f.net.num_as(), f.net.as_adjacency);
    solver.solve();
    int mismatches = 0;
    for (AsId a = 0; a < f.net.num_as(); ++a) {
      for (AsId b = 0; b < f.net.num_as(); ++b) {
        if (a == b) continue;
        mismatches +=
            f.speakers->best_route(a, b).next_hop_as !=
            solver.route(a, b).next_hop_as;
      }
    }
    EXPECT_EQ(mismatches, 0) << "seed " << seed;
  }
}

TEST(BgpDynamic, ThreadedMatchesSequential) {
  const auto run_once = [](bool threaded) {
    Fixture f(10, 7, /*lps=*/2);
    f.run(threaded);
    std::vector<AsId> hops;
    for (AsId a = 0; a < f.net.num_as(); ++a) {
      for (AsId b = 0; b < f.net.num_as(); ++b) {
        hops.push_back(f.speakers->best_route(a, b).next_hop_as);
      }
    }
    hops.push_back(static_cast<AsId>(f.speakers->updates_sent()));
    return hops;
  };
  EXPECT_EQ(run_once(false), run_once(true));
}

TEST(BgpDynamic, WithdrawalPropagates) {
  Fixture f(10, 5, 1, seconds(60));
  const AsId victim = f.net.num_as() - 1;
  // Withdraw the victim's prefix after initial convergence; never restore.
  f.speakers->schedule_beacon(*f.engine, *f.sim, victim, seconds(10),
                              seconds(5), /*toggles=*/1);
  f.run();
  for (AsId a = 0; a < f.net.num_as(); ++a) {
    if (a == victim) continue;
    EXPECT_EQ(f.speakers->best_route(a, victim).next_hop_as, -1)
        << "AS " << a << " still routes to the withdrawn prefix";
    // Other prefixes are untouched.
    int reachable_others = 0;
    for (AsId b = 0; b < f.net.num_as(); ++b) {
      if (b == a || b == victim) continue;
      reachable_others +=
          f.speakers->best_route(a, b).next_hop_as >= 0;
    }
    EXPECT_GT(reachable_others, 0);
  }
}

TEST(BgpDynamic, BeaconReannounceRestoresRoutes) {
  Fixture f(10, 5, 1, seconds(120));
  const AsId beacon = f.net.num_as() - 1;
  // Withdraw at 10 s, re-announce at 25 s.
  f.speakers->schedule_beacon(*f.engine, *f.sim, beacon, seconds(10),
                              seconds(15), /*toggles=*/2);
  f.run();
  BgpSolver solver(f.net.num_as(), f.net.as_adjacency);
  solver.solve();
  for (AsId a = 0; a < f.net.num_as(); ++a) {
    if (a == beacon) continue;
    EXPECT_EQ(f.speakers->best_route(a, beacon).next_hop_as,
              solver.route(a, beacon).next_hop_as);
    // Every AS that has a route heard about the beacon activity after the
    // re-announcement instant.
    if (solver.route(a, beacon).next_hop_as >= 0) {
      EXPECT_GT(f.speakers->last_change_for(a, beacon), seconds(25));
    }
  }
}

TEST(BgpDynamic, MraiStillConvergesToStaticSolver) {
  BgpDynamicOptions bo;
  bo.mrai = milliseconds(500);
  Fixture f(10, 5, 1, seconds(120), bo);
  f.run();
  BgpSolver solver(f.net.num_as(), f.net.as_adjacency);
  solver.solve();
  for (AsId a = 0; a < f.net.num_as(); ++a) {
    for (AsId b = 0; b < f.net.num_as(); ++b) {
      if (a == b) continue;
      EXPECT_EQ(f.speakers->best_route(a, b).next_hop_as,
                solver.route(a, b).next_hop_as)
          << a << "->" << b;
    }
  }
}

TEST(BgpDynamic, MraiReducesMessageCountAndSlowsConvergence) {
  const auto run_with = [](SimTime mrai) {
    BgpDynamicOptions bo;
    bo.mrai = mrai;
    Fixture f(12, 5, 1, seconds(240), bo);
    f.run();
    return std::make_pair(f.speakers->batches_sent(),
                          f.speakers->last_change());
  };
  const auto fast = run_with(0);
  const auto damped = run_with(seconds(1));
  EXPECT_LT(damped.first, fast.first);
  EXPECT_GT(damped.second, fast.second);
}

TEST(BgpDynamic, SessionResetWithdrawsWhileDown) {
  // End the run while the session is still torn down: neither endpoint may
  // route via the other, and prefixes whose only path crossed the session
  // are withdrawn network-wide.
  Fixture f(10, 5, 1, seconds(14));
  // Pick an adjacency that actually carries traffic in the fixed point.
  BgpSolver solver(f.net.num_as(), f.net.as_adjacency);
  solver.solve();
  AsId as_a = -1, as_b = -1;
  for (const AsAdjacency& adj : f.net.as_adjacency) {
    for (AsId dest = 0; dest < f.net.num_as(); ++dest) {
      if (solver.route(adj.as_a, dest).next_hop_as == adj.as_b) {
        as_a = adj.as_a;
        as_b = adj.as_b;
        break;
      }
    }
    if (as_a >= 0) break;
  }
  ASSERT_GE(as_a, 0) << "no adjacency carries a best route";

  // Down at 10 s; the 60 s re-establishment is beyond the horizon.
  f.speakers->schedule_session_reset(*f.engine, *f.sim, as_a, as_b,
                                     seconds(10), seconds(60));
  f.run();
  EXPECT_EQ(f.speakers->session_resets(), 2u);
  for (AsId dest = 0; dest < f.net.num_as(); ++dest) {
    EXPECT_NE(f.speakers->best_route(as_a, dest).next_hop_as, as_b)
        << "AS " << as_a << " still routes to " << dest << " via the peer";
    EXPECT_NE(f.speakers->best_route(as_b, dest).next_hop_as, as_a)
        << "AS " << as_b << " still routes to " << dest << " via the peer";
  }
}

TEST(BgpDynamic, SessionResetReconvergesToStaticSolver) {
  // Down at 10 s, re-established at 15 s; by the horizon the full-table
  // re-advertisement must restore the static solver's fixed point exactly,
  // and any in-flight batch from the old session incarnation must have
  // been discarded rather than replayed into the fresh RIB.
  Fixture f(10, 5, 1, seconds(120));
  const AsAdjacency& adj = f.net.as_adjacency.front();
  f.speakers->schedule_session_reset(*f.engine, *f.sim, adj.as_a, adj.as_b,
                                     seconds(10), seconds(5));
  f.run();
  EXPECT_EQ(f.speakers->session_resets(), 2u);
  EXPECT_GT(f.speakers->last_change(), seconds(10));
  BgpSolver solver(f.net.num_as(), f.net.as_adjacency);
  solver.solve();
  for (AsId a = 0; a < f.net.num_as(); ++a) {
    for (AsId b = 0; b < f.net.num_as(); ++b) {
      if (a == b) continue;
      EXPECT_EQ(f.speakers->best_route(a, b).next_hop_as,
                solver.route(a, b).next_hop_as)
          << a << "->" << b;
      if (solver.route(a, b).next_hop_as >= 0) {
        EXPECT_EQ(f.speakers->as_path(a, b), solver.as_path(a, b))
            << a << "->" << b;
      }
    }
  }
}

TEST(BgpDynamic, SessionResetBitIdenticalAcrossExecutors) {
  const auto run_once = [](bool threaded) {
    Fixture f(10, 7, /*lps=*/2, seconds(120));
    const AsAdjacency& adj = f.net.as_adjacency.front();
    f.speakers->schedule_session_reset(*f.engine, *f.sim, adj.as_a,
                                       adj.as_b, seconds(10), seconds(5));
    f.run(threaded);
    std::vector<std::int64_t> sig;
    for (AsId a = 0; a < f.net.num_as(); ++a) {
      for (AsId b = 0; b < f.net.num_as(); ++b) {
        sig.push_back(f.speakers->best_route(a, b).next_hop_as);
        sig.push_back(f.speakers->last_change_for(a, b));
      }
    }
    sig.push_back(static_cast<std::int64_t>(f.speakers->updates_sent()));
    sig.push_back(
        static_cast<std::int64_t>(f.speakers->stale_batches_dropped()));
    sig.push_back(f.speakers->last_change());
    return sig;
  };
  EXPECT_EQ(run_once(false), run_once(true));
}

TEST(BgpDynamic, ConvergenceTimeReasonable) {
  Fixture f(12, 5);
  f.run();
  // Everything should settle well before the horizon (small network, fast
  // links); convergence time is positive and finite.
  EXPECT_GT(f.speakers->last_change(), 0);
  EXPECT_LT(f.speakers->last_change(), seconds(10));
}

}  // namespace
}  // namespace massf
