// Differential fuzzing of the PDES executors.
//
// The engine's load-bearing promise is that the threaded executor is an
// invisible optimization: for any workload, run_threaded(N) must produce
// bit-identical simulation results to the sequential reference run(). The
// scheduler overhaul (dynamic LP claiming, arena event heap, parallel
// outbox merge — DESIGN.md section 5d) preserves that promise by
// construction; this test checks it by generation. Each seeded scenario
// randomizes the LP count, lookahead, event fan-out, cross-LP send
// patterns, barrier-hook injection, and mid-run stops (from hooks and from
// handlers), then asserts that the full result signature — per-LP event
// counts and checksums, RunStats (including the modeled-time doubles, bit
// for bit), and the window probe's deterministic counters — is identical
// across the sequential executor and several thread counts, under both
// threaded synchronization protocols (global barriers and channel clocks,
// EngineOptions::sync).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "obs/probe.hpp"
#include "pdes/engine.hpp"

namespace massf {
namespace {

constexpr int kNumSeeds = 60;

// splitmix64: small, seedable, and stable across platforms.
std::uint64_t mix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

struct Scenario {
  std::int32_t lps;
  SimTime lookahead;
  SimTime end_time;
  std::int32_t initial_events;  // 0 for some seeds: the empty-run path
  std::uint64_t fanout_budget;  // remaining re-schedules carried in ev.a
  bool hook_injects;
  std::uint64_t stop_after_windows;   // 0 = no hook stop
  std::uint64_t handler_stop_events;  // 0 = no handler stop
};

Scenario make_scenario(std::uint64_t seed) {
  std::uint64_t s = seed * 0x9e3779b97f4a7c15ULL + 1;
  Scenario sc;
  sc.lps = static_cast<std::int32_t>(1 + mix64(s) % 9);
  sc.lookahead = microseconds(200 + 200 * static_cast<std::int64_t>(
                                               mix64(s) % 9));  // 0.2–1.8ms
  sc.end_time = milliseconds(20 + static_cast<std::int64_t>(mix64(s) % 60));
  sc.initial_events =
      seed % 17 == 0 ? 0 : static_cast<std::int32_t>(1 + mix64(s) % 6);
  sc.fanout_budget = 40 + mix64(s) % 160;
  sc.hook_injects = mix64(s) % 3 != 0;
  sc.stop_after_windows = mix64(s) % 4 == 0 ? 10 + mix64(s) % 40 : 0;
  sc.handler_stop_events = mix64(s) % 5 == 0 ? 50 + mix64(s) % 200 : 0;
  return sc;
}

// Deterministic function of its own event stream: all randomness comes
// from a per-LP rng advanced once per handled event, so results cannot
// depend on thread scheduling.
class FuzzLp final : public LogicalProcess {
 public:
  FuzzLp(std::uint64_t seed, LpId self, std::int32_t num_lps,
         const Scenario& sc)
      : rng_(seed ^ (0xabcdef12345678ULL + static_cast<std::uint64_t>(self))),
        self_(self),
        num_lps_(num_lps),
        sc_(sc) {}

  void handle(Engine& engine, const Event& ev) override {
    ++count;
    checksum = checksum * 1099511628211ULL +
               (static_cast<std::uint64_t>(ev.time) ^
                (static_cast<std::uint64_t>(ev.type) << 48) ^ ev.a);
    const std::uint64_t r = mix64(rng_);
    if (ev.a > 0) {
      const SimTime la = engine.options().lookahead;
      switch (r % 5) {
        case 0:
        case 1: {
          // Self event, usually inside the current window.
          const SimTime d = 1 + static_cast<SimTime>(r >> 8) % la;
          engine.schedule(self_, ev.time + d, 1, ev.a - 1);
          break;
        }
        case 2: {
          // Cross-LP send at the conservative limit plus jitter.
          const LpId dst =
              static_cast<LpId>((r >> 16) % static_cast<std::uint64_t>(
                                                num_lps_));
          const SimTime jitter = static_cast<SimTime>((r >> 40) % 1000);
          engine.schedule(dst, ev.time + la + jitter, 2, ev.a - 1);
          break;
        }
        case 3: {
          // Burst: one self + one cross.
          engine.schedule(self_, ev.time + 1 + static_cast<SimTime>(r % 500),
                          3, ev.a / 2);
          const LpId dst =
              static_cast<LpId>((r >> 16) % static_cast<std::uint64_t>(
                                                num_lps_));
          engine.schedule(dst, ev.time + la, 4, ev.a - 1);
          break;
        }
        default:
          break;  // absorb
      }
    }
    if (sc_.handler_stop_events > 0 && count == sc_.handler_stop_events) {
      engine.request_stop();
    }
  }

  std::uint64_t count = 0;
  std::uint64_t checksum = 0;

 private:
  std::uint64_t rng_;
  LpId self_;
  std::int32_t num_lps_;
  const Scenario& sc_;
};

std::uint64_t double_bits(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

/// Runs one scenario on the given executor and folds everything
/// deterministic about the run into a comparable signature. `sync` picks
/// the threaded synchronization protocol (ignored by the sequential
/// reference); `declare_channels` additionally declares the full all-pairs
/// ChannelGraph, exercising the per-neighbor merge path and schedule()'s
/// topology enforcement instead of the dense fallback.
std::vector<std::uint64_t> run_signature(std::uint64_t seed,
                                         std::int32_t threads,
                                         SyncMode sync = SyncMode::kBarrier,
                                         bool declare_channels = false,
                                         std::uint64_t* null_events = nullptr) {
  const Scenario sc = make_scenario(seed);
  EngineOptions o;
  o.lookahead = sc.lookahead;
  o.end_time = sc.end_time;
  o.cost_per_event_s = 1e-6;
  o.sync_cost_s = 1e-5;
  o.sync = sync;
  Engine engine(o);
  std::vector<FuzzLp*> lps;
  for (std::int32_t i = 0; i < sc.lps; ++i) {
    auto lp = std::make_unique<FuzzLp>(seed, i, sc.lps, sc);
    lps.push_back(lp.get());
    engine.add_lp(std::move(lp));
  }
  if (declare_channels && sc.lps > 1) {
    ChannelGraph graph;
    for (LpId src = 0; src < sc.lps; ++src) {
      for (LpId dst = 0; dst < sc.lps; ++dst) {
        if (src != dst) graph.add(src, dst, sc.lookahead);
      }
    }
    engine.set_channels(std::move(graph));
  }
  std::uint64_t init_rng = seed ^ 0x5151515151515151ULL;
  for (std::int32_t i = 0; i < sc.initial_events; ++i) {
    const std::uint64_t r = mix64(init_rng);
    engine.schedule(static_cast<LpId>(r % static_cast<std::uint64_t>(sc.lps)),
                    static_cast<SimTime>(r >> 32) % milliseconds(5), 1,
                    sc.fanout_budget);
  }

  std::uint64_t hook_rng = seed ^ 0xf00dULL;
  std::uint64_t windows_seen = 0;
  engine.hooks().barrier.push_back([&](Engine& eng, SimTime floor) {
    ++windows_seen;
    if (sc.hook_injects && mix64(hook_rng) % 7 == 0) {
      const std::uint64_t r = mix64(hook_rng);
      eng.schedule(
          static_cast<LpId>(r % static_cast<std::uint64_t>(sc.lps)),
          floor + eng.options().lookahead + static_cast<SimTime>(r % 1000), 5,
          3);
    }
    if (sc.stop_after_windows > 0 && windows_seen == sc.stop_after_windows) {
      eng.request_stop();
    }
  });

  obs::WindowProbe probe;
  engine.set_probe(&probe);
  const RunStats stats =
      threads > 0 ? engine.run_threaded(threads) : engine.run();
  if (null_events != nullptr) *null_events = engine.sync_stats().null_events;

  std::vector<std::uint64_t> sig;
  for (const FuzzLp* lp : lps) {
    sig.push_back(lp->count);
    sig.push_back(lp->checksum);
  }
  sig.push_back(stats.total_events);
  sig.push_back(stats.num_windows);
  sig.push_back(static_cast<std::uint64_t>(stats.end_vtime));
  sig.push_back(stats.cross_lp_events);
  sig.push_back(stats.merge_batches);
  sig.push_back(double_bits(stats.modeled_wall_s));
  sig.push_back(double_bits(stats.modeled_sync_s));
  for (const std::uint64_t e : stats.events_per_lp) sig.push_back(e);
  for (const double b : stats.busy_s) sig.push_back(double_bits(b));
  const obs::WindowProbe::Summary s = probe.summary();
  sig.push_back(s.windows);
  sig.push_back(s.events);
  sig.push_back(s.max_queue_depth);
  sig.push_back(s.outbox_events);
  sig.push_back(s.outbox_batches);
  // Per-window deterministic columns (counts only; phase timings are real
  // wall clock and legitimately differ).
  for (const obs::WindowProbe::Window& w : probe.windows()) {
    sig.push_back(w.events);
    sig.push_back(w.max_lp_events);
    sig.push_back(w.queue_depth);
    sig.push_back(w.outbox);
    sig.push_back(w.outbox_batches);
  }
  return sig;
}

class PdesFuzz : public ::testing::TestWithParam<int> {};

TEST_P(PdesFuzz, ThreadedMatchesSequential) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const std::vector<std::uint64_t> reference = run_signature(seed, 0);
  for (const std::int32_t threads : {2, 3, 5}) {
    EXPECT_EQ(reference, run_signature(seed, threads, SyncMode::kBarrier))
        << "seed=" << seed << " threads=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PdesFuzz, ::testing::Range(0, kNumSeeds));

// ---- channel-clock sync axis (DESIGN.md section 5g) -------------------------
//
// Same differential contract, against the channel executor: for every seed
// the full signature must match the sequential reference at several thread
// counts, both with the dense all-pairs fallback (odd seeds) and with a
// declared all-pairs ChannelGraph (even seeds — per-neighbor merges, null
// tallies, topology-checked sends). The null-event count is part of the
// protocol's determinism promise: it may not vary with the thread count.
class PdesChannelFuzz : public ::testing::TestWithParam<int> {};

TEST_P(PdesChannelFuzz, ChannelSyncMatchesSequential) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const bool declare = seed % 2 == 0;
  const std::vector<std::uint64_t> reference =
      run_signature(seed, 0, SyncMode::kBarrier, declare);
  std::uint64_t reference_nulls = 0;
  bool have_nulls = false;
  for (const std::int32_t threads : {2, 3, 5}) {
    std::uint64_t nulls = 0;
    EXPECT_EQ(reference, run_signature(seed, threads, SyncMode::kChannel,
                                       declare, &nulls))
        << "seed=" << seed << " threads=" << threads;
    if (!have_nulls) {
      reference_nulls = nulls;
      have_nulls = true;
    } else {
      EXPECT_EQ(reference_nulls, nulls)
          << "null advances vary with thread count; seed=" << seed
          << " threads=" << threads;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PdesChannelFuzz, ::testing::Range(0, 32));

}  // namespace
}  // namespace massf
