#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/probe.hpp"

namespace massf::obs {
namespace {

TEST(Metrics, CounterAccumulates) {
  Registry r;
  Counter& c = r.counter("a");
  c.inc();
  c.inc(9);
  EXPECT_EQ(c.value(), 10u);
  // Same name -> same counter.
  EXPECT_EQ(&r.counter("a"), &c);
  EXPECT_EQ(r.counter("a").value(), 10u);
}

TEST(Metrics, GaugeSetAndAdd) {
  Registry r;
  Gauge& g = r.gauge("g");
  g.set(2.5);
  g.add(0.25);
  EXPECT_DOUBLE_EQ(g.value(), 2.75);
  g.set(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), -1.0);
}

TEST(Metrics, HistogramBucketsFollowLeConvention) {
  Registry r;
  const std::array<double, 3> bounds = {1.0, 2.0, 4.0};
  Histogram& h = r.histogram("h", bounds);
  h.observe(0.5);   // <= 1
  h.observe(1.0);   // <= 1 (inclusive upper bound)
  h.observe(1.5);   // <= 2
  h.observe(4.5);   // overflow
  const auto counts = h.counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 7.5);
}

TEST(Metrics, ConcurrentIncrementsAreLossless) {
  Registry r;
  Counter& c = r.counter("n");
  Gauge& g = r.gauge("s");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        c.inc();
        g.add(1.0);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), 40000u);
  EXPECT_DOUBLE_EQ(g.value(), 40000.0);
}

TEST(Metrics, SnapshotsAreNameOrdered) {
  Registry r;
  r.counter("z.last").inc();
  r.counter("a.first").inc(2);
  r.counter("m.middle").inc(3);
  const auto counters = r.counters();
  ASSERT_EQ(counters.size(), 3u);
  EXPECT_EQ(counters[0].first, "a.first");
  EXPECT_EQ(counters[1].first, "m.middle");
  EXPECT_EQ(counters[2].first, "z.last");
}

TEST(Export, FormatDoubleRoundTripsAndClamps) {
  EXPECT_EQ(format_double(0.25), "0.25");
  EXPECT_EQ(format_double(0.0), "0");
  EXPECT_EQ(format_double(-3.0), "-3");
  EXPECT_EQ(format_double(std::nan("")), "0");
  EXPECT_EQ(format_double(1.0 / 0.0), "1e308");
  EXPECT_EQ(format_double(-1.0 / 0.0), "-1e308");
}

// Golden test: the exact bytes of the JSON export, so the schema cannot
// drift silently (BENCH_*.json files are diffed across PRs).
TEST(Export, JsonGolden) {
  Registry r;
  r.counter("pdes.events").inc(42);
  r.counter("net.forwarded").inc(7);
  r.gauge("sim.load_imbalance").set(1.5);
  const std::array<double, 2> bounds = {0.5, 2.0};
  Histogram& h = r.histogram("win.events", bounds);
  h.observe(0.25);
  h.observe(3.0);
  const std::string expected =
      "{\n"
      "  \"schema\": \"massf.metrics.v1\",\n"
      "  \"counters\": {\n"
      "    \"net.forwarded\": 7,\n"
      "    \"pdes.events\": 42\n"
      "  },\n"
      "  \"gauges\": {\n"
      "    \"sim.load_imbalance\": 1.5\n"
      "  },\n"
      "  \"histograms\": {\n"
      "    \"win.events\": {\"bounds\": [0.5, 2], \"counts\": [1, 0, 1], "
      "\"count\": 2, \"sum\": 3.25}\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(to_json(r), expected);
}

TEST(Export, EmptyRegistryJsonIsValid) {
  Registry r;
  const std::string expected =
      "{\n"
      "  \"schema\": \"massf.metrics.v1\",\n"
      "  \"counters\": {},\n"
      "  \"gauges\": {},\n"
      "  \"histograms\": {}\n"
      "}\n";
  EXPECT_EQ(to_json(r), expected);
}

TEST(Export, CsvGolden) {
  Registry r;
  r.counter("c").inc(3);
  r.gauge("g").set(0.5);
  const std::array<double, 1> bounds = {1.0};
  r.histogram("h", bounds).observe(0.5);
  const std::string expected =
      "kind,name,field,value\n"
      "counter,c,value,3\n"
      "gauge,g,value,0.5\n"
      "histogram,h,count,1\n"
      "histogram,h,sum,0.5\n"
      "histogram,h,le_1,1\n"
      "histogram,h,le_inf,0\n";
  EXPECT_EQ(to_csv(r), expected);
}

TEST(Export, WriteFileRoundTrips) {
  const std::string path = ::testing::TempDir() + "obs_export_test.json";
  ASSERT_TRUE(write_file(path, "hello\n"));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[16] = {};
  const std::size_t n = std::fread(buf, 1, sizeof buf, f);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(std::string(buf, n), "hello\n");
}

TEST(Probe, AccumulatesWindowsAndSummary) {
  WindowProbe probe;
  probe.begin_window(0, 0.0);
  probe.record_lp(0, 3, 5, 1, 1);
  probe.record_lp(1, 1, 2, 0, 0);
  probe.end_window(0.1, 0.2, 0.05, 0.01);
  probe.begin_window(1, 0.001);
  probe.record_lp(0, 2, 4, 2, 2);
  probe.end_window(0.0, 0.1, 0.0, 0.0);

  ASSERT_EQ(probe.windows().size(), 2u);
  const auto& w0 = probe.windows()[0];
  EXPECT_EQ(w0.events, 4u);
  EXPECT_EQ(w0.max_lp_events, 3u);
  EXPECT_EQ(w0.queue_depth, 7u);
  EXPECT_EQ(w0.max_queue_depth, 5u);
  EXPECT_EQ(w0.outbox, 1u);
  EXPECT_EQ(w0.outbox_batches, 1u);
  EXPECT_DOUBLE_EQ(w0.hook_s, 0.1);

  const auto s = probe.summary();
  EXPECT_EQ(s.windows, 2u);
  EXPECT_EQ(s.events, 6u);
  EXPECT_EQ(s.outbox_events, 3u);
  EXPECT_EQ(s.outbox_batches, 3u);
  EXPECT_EQ(s.max_queue_depth, 5u);
  EXPECT_DOUBLE_EQ(s.process_s, 0.3);

  ASSERT_EQ(probe.num_lps(), 2u);
  EXPECT_EQ(probe.lp_events()[0], 5u);
  EXPECT_EQ(probe.lp_events()[1], 1u);
}

TEST(Probe, MaxWindowsCapsRowsNotSummary) {
  WindowProbe probe(/*max_windows=*/1);
  for (int i = 0; i < 3; ++i) {
    probe.begin_window(static_cast<std::uint64_t>(i), 0.0);
    probe.record_lp(0, 1, 0, 0);
    probe.end_window(0, 0, 0, 0);
  }
  EXPECT_EQ(probe.windows().size(), 1u);
  EXPECT_EQ(probe.summary().windows, 3u);
  EXPECT_EQ(probe.summary().events, 3u);
}

TEST(Probe, CsvHasFixedHeaderAndOneRowPerWindow) {
  WindowProbe probe;
  probe.begin_window(0, 0.5);
  probe.record_lp(0, 2, 1, 0);
  probe.end_window(0, 0.25, 0, 0);
  const std::string csv = probe.to_csv();
  EXPECT_EQ(csv,
            "window,start_vtime_s,events,max_lp_events,queue_depth,"
            "max_queue_depth,outbox,hook_s,process_s,barrier_wait_s,merge_s\n"
            "0,0.5,2,2,1,1,0,0,0.25,0,0\n");
}

TEST(Probe, PublishesSummaryIntoRegistry) {
  WindowProbe probe;
  probe.begin_window(0, 0.0);
  probe.record_lp(0, 4, 2, 1, 1);
  probe.end_window(0.1, 0.2, 0.3, 0.4);
  Registry r;
  probe.publish(r);
  EXPECT_EQ(r.counter("pdes.probe.windows").value(), 1u);
  EXPECT_EQ(r.counter("pdes.probe.events").value(), 4u);
  EXPECT_EQ(r.counter("pdes.probe.outbox_events").value(), 1u);
  EXPECT_EQ(r.counter("pdes.probe.outbox_batches").value(), 1u);
  EXPECT_DOUBLE_EQ(r.gauge("pdes.probe.barrier_wait_s").value(), 0.3);
}

}  // namespace
}  // namespace massf::obs
