#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "fault/fault.hpp"
#include "fault/injector.hpp"
#include "net/netsim.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "routing/forwarding.hpp"
#include "topology/mabrite.hpp"
#include "traffic/manager.hpp"

namespace massf {
namespace {

// ---- FaultSchedule + scenario format ---------------------------------------

TEST(FaultSchedule, BuilderAccumulatesEvents) {
  FaultSchedule s;
  s.link_down(seconds(1), 3)
      .link_up(seconds(4), 3)
      .router_crash(seconds(2), 7)
      .router_restore(seconds(6), 7)
      .loss_burst(seconds(3), 2, seconds(1), 0.25)
      .bgp_reset(seconds(5), 1, 2, seconds(2));
  ASSERT_EQ(s.size(), 6u);
  EXPECT_EQ(s.events()[0].kind, FaultKind::kLinkDown);
  EXPECT_EQ(s.events()[4].rate, 0.25);
  EXPECT_EQ(s.events()[5].peer, 2);
}

TEST(FaultSchedule, FlapTrainExpandsToDownUpPairs) {
  FaultSchedule s;
  s.flap_train(seconds(10), /*link=*/5, /*count=*/3, seconds(2),
               milliseconds(500));
  ASSERT_EQ(s.size(), 6u);
  for (std::int32_t i = 0; i < 3; ++i) {
    const FaultEvent& down = s.events()[static_cast<std::size_t>(2 * i)];
    const FaultEvent& up = s.events()[static_cast<std::size_t>(2 * i + 1)];
    EXPECT_EQ(down.kind, FaultKind::kLinkDown);
    EXPECT_EQ(up.kind, FaultKind::kLinkUp);
    EXPECT_EQ(down.target, 5);
    EXPECT_EQ(down.at, seconds(10) + seconds(2) * i);
    EXPECT_EQ(up.at - down.at, milliseconds(500));
  }
}

TEST(FaultSchedule, TextRoundTrips) {
  FaultSchedule s;
  s.link_down(seconds(1), 3)
      .link_up(seconds(4), 3)
      .router_crash(seconds(2), 7)
      .loss_burst(milliseconds(2500), 2, milliseconds(500), 0.3)
      .bgp_reset(seconds(5), 1, 2, seconds(1));
  const std::string text = s.to_text();
  std::string error;
  const auto parsed = parse_fault_schedule(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_EQ(parsed->size(), s.size());
  // to_text() emits time-sorted lines; compare against the sorted original.
  std::vector<FaultEvent> want = s.events();
  std::stable_sort(
      want.begin(), want.end(),
      [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(parsed->events()[i].at, want[i].at) << i;
    EXPECT_EQ(parsed->events()[i].kind, want[i].kind) << i;
    EXPECT_EQ(parsed->events()[i].target, want[i].target) << i;
    EXPECT_EQ(parsed->events()[i].peer, want[i].peer) << i;
    EXPECT_EQ(parsed->events()[i].duration, want[i].duration) << i;
    EXPECT_DOUBLE_EQ(parsed->events()[i].rate, want[i].rate) << i;
  }
}

TEST(FaultSchedule, ParserHandlesCommentsAndBlanks) {
  const auto s = parse_fault_schedule(
      "# a comment line\n"
      "\n"
      "at 1.5 link_down link=2   # trailing comment\n"
      "at 2 flap link=0 count=2 period=1 downtime=0.25\n");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->size(), 5u);  // 1 link_down + 2 down/up pairs
}

TEST(FaultSchedule, ParserReportsLineAndCause) {
  std::string error;
  EXPECT_FALSE(parse_fault_schedule("at 1 link_down link=2\nboom\n", &error));
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;

  EXPECT_FALSE(parse_fault_schedule("at x link_down link=2\n", &error));
  EXPECT_NE(error.find("bad time"), std::string::npos) << error;

  EXPECT_FALSE(parse_fault_schedule("at 1 warp core=3\n", &error));
  EXPECT_NE(error.find("unknown event"), std::string::npos) << error;

  EXPECT_FALSE(parse_fault_schedule("at 1 link_down\n", &error));
  EXPECT_NE(error.find("link"), std::string::npos) << error;

  EXPECT_FALSE(
      parse_fault_schedule("at 1 loss link=0 duration=1 rate=1.5\n", &error));
  EXPECT_NE(error.find("0<rate<1"), std::string::npos) << error;

  EXPECT_FALSE(
      parse_fault_schedule("at 1 bgp_reset as=1 peer=1 downtime=1\n", &error));
  EXPECT_NE(error.find("as != peer"), std::string::npos) << error;
}

// ---- FaultInjector end to end ----------------------------------------------

// Small multi-AS world with dynamic BGP speakers (the BGP control traffic
// doubles as the injector's victim workload).
struct Rig {
  explicit Rig(std::int32_t lps = 1, SimTime end = seconds(30),
               const NetSimOptions& no = NetSimOptions{}) {
    MaBriteOptions o;
    o.num_as = 6;
    o.routers_per_as = 4;
    o.num_hosts = 12;
    o.seed = 5;
    net = generate_multi_as(o);
    speaker_hosts = add_bgp_speaker_hosts(net);
    std::vector<NodeId> dests;
    for (NodeId h = net.num_routers; h < static_cast<NodeId>(net.nodes.size());
         ++h) {
      dests.push_back(net.nodes[static_cast<std::size_t>(h)].attach_router);
    }
    fp = std::make_unique<ForwardingPlane>(
        ForwardingPlane::build_multi_as(net, dests));

    std::vector<LpId> map(static_cast<std::size_t>(net.num_routers), 0);
    SimTime lookahead = milliseconds(10);
    if (lps > 1) {
      for (NodeId r = 0; r < net.num_routers; ++r) {
        map[static_cast<std::size_t>(r)] =
            net.nodes[static_cast<std::size_t>(r)].as_id % lps;
      }
      lookahead = kSimTimeMax;
      for (const NetLink& l : net.links) {
        if (net.is_router(l.a) && net.is_router(l.b) &&
            map[static_cast<std::size_t>(l.a)] !=
                map[static_cast<std::size_t>(l.b)]) {
          lookahead = std::min(lookahead, l.latency);
        }
      }
    }
    EngineOptions eo;
    eo.lookahead = lookahead;
    eo.end_time = end;
    engine = std::make_unique<Engine>(eo);
    sim = std::make_unique<NetSim>(net, *fp, map, *engine, no);
    manager = std::make_unique<TrafficManager>(*sim);
    auto sp =
        std::make_unique<BgpSpeakers>(net, speaker_hosts, BgpDynamicOptions{});
    speakers = sp.get();
    manager->add(TrafficKind::kBgp, std::move(sp));
    injector = std::make_unique<FaultInjector>(net, *fp);
    injector->set_bgp(speakers);
  }

  /// First intra-AS router-router link of `as`.
  LinkId intra_link(AsId as) const {
    for (LinkId l = 0; l < static_cast<LinkId>(net.links.size()); ++l) {
      const NetLink& link = net.links[static_cast<std::size_t>(l)];
      if (!link.inter_as && net.is_router(link.a) && net.is_router(link.b) &&
          net.nodes[static_cast<std::size_t>(link.a)].as_id == as) {
        return l;
      }
    }
    return kInvalidLink;
  }

  /// The access link attaching `host`.
  LinkId access_link(NodeId host) const {
    for (LinkId l = 0; l < static_cast<LinkId>(net.links.size()); ++l) {
      if (net.links[static_cast<std::size_t>(l)].a == host ||
          net.links[static_cast<std::size_t>(l)].b == host) {
        return l;
      }
    }
    return kInvalidLink;
  }

  void run(const FaultSchedule& schedule, bool threaded = false) {
    injector->arm(*engine, *sim, schedule);
    manager->start(*engine, *sim);
    stats = threaded ? engine->run_threaded(2) : engine->run();
  }

  Network net;
  std::vector<NodeId> speaker_hosts;
  std::unique_ptr<ForwardingPlane> fp;
  std::unique_ptr<Engine> engine;
  std::unique_ptr<NetSim> sim;
  std::unique_ptr<TrafficManager> manager;
  BgpSpeakers* speakers = nullptr;
  std::unique_ptr<FaultInjector> injector;
  RunStats stats;
};

TEST(FaultInjector, LossBurstDropsPacketsDeterministically) {
  // A loss burst on a speaker's access link is guaranteed to see traffic
  // (all of that speaker's BGP updates cross it), and the drop decisions
  // hash the fault seed — so the count is nonzero and repeatable.
  const auto drops = [](std::uint64_t seed) {
    NetSimOptions no;
    no.fault_seed = seed;
    Rig rig(1, seconds(30), no);
    FaultSchedule s;
    s.loss_burst(milliseconds(5), rig.access_link(rig.speaker_hosts[0]),
                 seconds(20), 0.3);
    rig.run(s);
    return rig.sim->totals().dropped_loss;
  };
  const std::uint64_t a = drops(1);
  EXPECT_GT(a, 0u);
  EXPECT_EQ(a, drops(1)) << "same fault seed, same drops";
}

// Diamond: h4 - r0 - {r1 fast | r2 slow} - r3 - h5. OSPF prefers r1, so a
// flow through the fast branch has packets in flight at r1 when it crashes.
Network diamond() {
  Network net;
  for (int i = 0; i < 4; ++i) {
    NetNode r;
    r.kind = NodeKind::kRouter;
    net.nodes.push_back(r);
  }
  net.num_routers = 4;
  for (int i = 0; i < 2; ++i) {
    NetNode h;
    h.kind = NodeKind::kHost;
    h.attach_router = i == 0 ? 0 : 3;
    net.nodes.push_back(h);
  }
  const auto link = [&](NodeId a, NodeId b, SimTime lat) {
    NetLink l;
    l.a = a;
    l.b = b;
    l.latency = lat;
    l.bandwidth_bps = 1e8;
    net.links.push_back(l);
  };
  link(0, 1, milliseconds(1));  // link 0: fast branch
  link(1, 3, milliseconds(1));  // link 1
  link(0, 2, milliseconds(5));  // link 2: slow branch
  link(2, 3, milliseconds(5));  // link 3
  link(0, 4, microseconds(10));
  link(3, 5, microseconds(10));
  net.build_adjacency();
  return net;
}

TEST(FaultInjector, RouterCrashBlackholesAndOspfReconverges) {
  Network net = diamond();
  ForwardingPlane fp = ForwardingPlane::build_flat(net, {{0, 3}});
  EngineOptions eo;
  eo.lookahead = milliseconds(1);
  eo.end_time = seconds(60);
  Engine engine(eo);
  NetSim sim(net, fp, std::vector<LpId>{0, 0, 0, 0}, engine, NetSimOptions{});

  FaultInjector injector(net, fp);
  FaultSchedule s;
  s.router_crash(milliseconds(50), 1).router_restore(seconds(5), 1);
  injector.arm(engine, sim, s);

  std::uint32_t completions = 0, failures = 0;
  sim.set_flow_complete([&](Engine&, NetSim&, FlowId, NodeId, NodeId,
                            std::uint32_t, bool failed) {
    ++(failed ? failures : completions);
  });
  // Flow 1 is mid-transfer through r1 when it crashes: in-flight packets
  // arrive at the dead router (node blackhole), the rest reroutes via r2
  // once OSPF reconverges, and TCP retransmission completes the transfer.
  // Flow 2 spans the restoration so the engine keeps opening windows while
  // the controller re-applies the interfaces.
  sim.start_flow(engine, milliseconds(1), 4, 5, 2000000, 1);
  sim.start_flow(engine, milliseconds(4500), 4, 5, 20000000, 2);
  engine.run();

  EXPECT_EQ(completions, 2u) << "both flows survive the crash";
  EXPECT_EQ(failures, 0u);
  EXPECT_GT(sim.totals().dropped_node_down, 0u) << "in-flight blackhole";
  EXPECT_EQ(injector.faults_injected(), 2u);
  // r1's two router interfaces each went down and came back: 4 applied
  // OSPF changes, each at least the convergence delay after the data-plane
  // change (barrier quantization makes them later, never earlier).
  ASSERT_EQ(injector.ospf_reconvergence_s().size(), 4u);
  for (const double sec : injector.ospf_reconvergence_s()) {
    EXPECT_GE(sec, 0.2);
    EXPECT_LT(sec, 1.5);
  }
}

TEST(FaultInjector, BgpResetReconvergenceMeasured) {
  Rig rig(1, seconds(40));
  const AsAdjacency& adj = rig.net.as_adjacency.front();
  FaultSchedule s;
  s.bgp_reset(seconds(10), adj.as_a, adj.as_b, seconds(2));
  rig.run(s);
  ASSERT_EQ(rig.injector->bgp_reconvergence().size(), 1u);
  const auto& r = rig.injector->bgp_reconvergence()[0];
  EXPECT_EQ(r.at, seconds(10));
  // The session re-establishes at 12 s and the full-table re-advertisement
  // settles shortly after, so the measured settle time is a bit over the
  // 2 s downtime.
  EXPECT_GE(r.settle_s, 2.0);
  EXPECT_LT(r.settle_s, 10.0);
  EXPECT_EQ(rig.speakers->session_resets(), 2u);
}

TEST(FaultInjector, ScriptedScenarioBitIdenticalAcrossExecutors) {
  // The acceptance scenario: flap train + router crash + BGP session reset,
  // parsed from the text format, must produce bit-identical RunStats and
  // byte-identical metrics JSON under both executors.
  const auto run_once = [](bool threaded) {
    Rig rig(/*lps=*/2, seconds(40));
    const AsAdjacency& adj = rig.net.as_adjacency.front();
    char text[256];
    std::snprintf(text, sizeof text,
                  "at 10 flap link=%d count=3 period=2 downtime=0.5\n"
                  "at 12 crash router=%d\n"
                  "at 18 restore router=%d\n"
                  "at 15 bgp_reset as=%d peer=%d downtime=2\n",
                  rig.intra_link(0), rig.net.as_info[1].first_router,
                  rig.net.as_info[1].first_router, adj.as_a, adj.as_b);
    std::string error;
    const auto schedule = parse_fault_schedule(text, &error);
    EXPECT_TRUE(schedule.has_value()) << error;
    rig.run(*schedule, threaded);

    obs::Registry registry;
    rig.sim->publish_metrics(registry);
    rig.manager->publish_metrics(registry);
    rig.injector->publish_metrics(registry);
    return std::make_tuple(rig.stats.total_events, rig.stats.num_windows,
                           rig.stats.events_per_lp, rig.stats.end_vtime,
                           obs::to_json(registry));
  };
  const auto seq = run_once(false);
  const auto thr = run_once(true);
  EXPECT_GT(std::get<0>(seq), 0u);
  EXPECT_EQ(seq, thr);
  // The metrics JSON carries the massf.fault.v1 block.
  EXPECT_NE(std::get<4>(seq).find("massf.fault.injected"), std::string::npos);
  EXPECT_NE(std::get<4>(seq).find("massf.fault.ospf_reconverge_s"),
            std::string::npos);
}

}  // namespace
}  // namespace massf
