// LinkModel boundary tests: utilization/byte-accounting edge cases on the
// packet model, the fluid fast path's analytic correctness, flow<->packet
// coupling in both directions, executor-independence of the hybrid model,
// checkpoint round trips, and the one-PR deprecation shims.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "ckpt/ckpt.hpp"
#include "net/fluid_link.hpp"
#include "net/netsim.hpp"
#include "routing/forwarding.hpp"
#include "util/error.hpp"

namespace massf {
namespace {

// A 4-router line with `hosts_per_router` hosts on every router:
//   h - r0 --1ms-- r1 --1ms-- r2 --1ms-- r3 - h     (1e8 bps everywhere)
// Link ids: r0r1=0, r1r2=1, r2r3=2, then access links in host order.
Network line_network(int hosts_per_router = 1, double bandwidth = 1e8) {
  Network net;
  for (int i = 0; i < 4; ++i) {
    NetNode r;
    r.kind = NodeKind::kRouter;
    net.nodes.push_back(r);
  }
  net.num_routers = 4;
  const auto link = [&](NodeId a, NodeId b, SimTime lat, double bw) {
    NetLink l;
    l.a = a;
    l.b = b;
    l.latency = lat;
    l.bandwidth_bps = bw;
    net.links.push_back(l);
  };
  link(0, 1, milliseconds(1), bandwidth);
  link(1, 2, milliseconds(1), bandwidth);
  link(2, 3, milliseconds(1), bandwidth);
  for (int r = 0; r < 4; ++r) {
    for (int h = 0; h < hosts_per_router; ++h) {
      NetNode host;
      host.kind = NodeKind::kHost;
      host.attach_router = r;
      const NodeId id = static_cast<NodeId>(net.nodes.size());
      net.nodes.push_back(host);
      link(r, id, microseconds(10), bandwidth);
    }
  }
  net.build_adjacency();
  return net;
}

struct Fixture {
  Fixture(const std::vector<LpId>& router_lp, const NetSimOptions& no,
          int hosts_per_router = 1, SimTime end = seconds(30))
      : net(line_network(hosts_per_router)),
        fp(ForwardingPlane::build_flat(net, std::vector<NodeId>{0, 1, 2, 3})) {
    EngineOptions eo;
    eo.lookahead = milliseconds(1);
    eo.end_time = end;
    eo.cost_per_event_s = 1e-6;
    engine = std::make_unique<Engine>(eo);
    sim = std::make_unique<NetSim>(net, fp, router_lp, *engine, no);
  }

  NodeId host(int idx) const { return static_cast<NodeId>(4 + idx); }

  Network net;
  ForwardingPlane fp;
  std::unique_ptr<Engine> engine;
  std::unique_ptr<NetSim> sim;
};

NetSimOptions packet_opts() {
  NetSimOptions no;
  no.collect_link_stats = true;
  no.collect_flow_records = true;
  return no;
}

NetSimOptions hybrid_opts() {
  NetSimOptions no = packet_opts();
  no.link_model.kind = LinkModelKind::kHybrid;
  return no;
}

// ---- link_utilization / link_bytes edge cases -------------------------------

TEST(LinkModelPacket, UtilizationZeroDurationWindowThrows) {
  Fixture f({0, 0, 0, 0}, packet_opts());
  EXPECT_THROW(f.sim->link_model().link_utilization(0, 0, 0), EngineError);
  EXPECT_THROW(f.sim->link_model().link_utilization(0, 0, -seconds(1)),
               EngineError);
}

TEST(LinkModelPacket, UtilizationWithoutStatsThrows) {
  NetSimOptions no;  // collect_link_stats off
  Fixture f({0, 0, 0, 0}, no);
  EXPECT_THROW(f.sim->link_model().link_utilization(0, 0, seconds(1)),
               EngineError);
}

TEST(LinkModelPacket, UtilizationBadDirectionThrows) {
  Fixture f({0, 0, 0, 0}, packet_opts());
  EXPECT_THROW(f.sim->link_model().link_utilization(0, 2, seconds(1)),
               EngineError);
  EXPECT_THROW(f.sim->link_model().link_utilization(0, -1, seconds(1)),
               EngineError);
}

TEST(LinkModelPacket, DownLinkAccruesNoBytes) {
  Fixture f({0, 0, 0, 0}, packet_opts());
  // Source's access link (id 3) down before any traffic.
  f.sim->link_model().schedule_link_state(*f.engine, 3, microseconds(1),
                                          false);
  f.sim->start_flow(*f.engine, milliseconds(5), f.host(0), f.host(3), 50000,
                    0);
  f.engine->run();
  EXPECT_GT(f.sim->totals().dropped_link_down, 0u);
  const auto& bytes = f.sim->link_model().link_bytes();
  EXPECT_EQ(bytes[3 * 2 + 0], 0u);
  EXPECT_EQ(bytes[3 * 2 + 1], 0u);
  EXPECT_EQ(f.sim->link_model().link_utilization(3, 0, seconds(1)), 0.0);
  EXPECT_EQ(f.sim->link_model().link_utilization(3, 1, seconds(1)), 0.0);
}

TEST(LinkModelPacket, LossDropsConsumeNoBandwidth) {
  Fixture f({0, 0, 0, 0}, packet_opts());
  // Near-total loss on the source's access link (the loss rate must stay
  // < 1.0): dropped packets must not accrue carried bytes.
  f.sim->link_model().schedule_loss_state(*f.engine, 3, microseconds(1),
                                          0.999999);
  f.sim->start_flow(*f.engine, milliseconds(5), f.host(0), f.host(3), 50000,
                    0);
  f.engine->run();
  EXPECT_GT(f.sim->totals().dropped_loss, 0u);
  const auto& bytes = f.sim->link_model().link_bytes();
  EXPECT_EQ(bytes[3 * 2 + 0] + bytes[3 * 2 + 1], 0u);
}

// ---- fluid fast path --------------------------------------------------------

// One 1 MB background flow on an otherwise idle path: the max-min share is
// the full 1e8 bps, so the analytic duration is 8e6 / 1e8 = 80 ms.
TEST(LinkModelFluid, SingleFlowMatchesAnalyticCompletionTime) {
  Fixture f({0, 0, 0, 0}, hybrid_opts());
  ASSERT_TRUE(f.sim->link_model().supports_background_flows());
  ASSERT_TRUE(f.sim->start_background_flow(*f.engine, 0, f.host(0), f.host(3),
                                           1000000, 7));
  f.engine->run();
  const auto recs = f.sim->flow_records();
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_TRUE(recs[0].flow & FluidLinkModel::kFluidFlowBit);
  EXPECT_EQ(recs[0].bytes, 1000000u);
  EXPECT_EQ(recs[0].tag, 7u);
  EXPECT_FALSE(recs[0].failed);
  EXPECT_NEAR(recs[0].duration_s(), 0.08, 0.01);
}

// A per-flow rate cap (the TCP window/RTT ceiling) bounds an otherwise
// unconstrained flow: 1 MB at a 1e7 bps cap on a 1e8 bps line takes ~0.8 s.
TEST(LinkModelFluid, RateCapBoundsFlowRate) {
  NetSimOptions no = hybrid_opts();
  no.link_model.fluid_flow_rate_cap_bps = 1e7;
  Fixture f({0, 0, 0, 0}, no);
  ASSERT_TRUE(f.sim->start_background_flow(*f.engine, 0, f.host(0), f.host(3),
                                           1000000, 7));
  f.engine->run();
  const auto recs = f.sim->flow_records();
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_FALSE(recs[0].failed);
  EXPECT_NEAR(recs[0].duration_s(), 0.8, 0.05);
}

// Two flows sharing the router line get the max-min fair half each.
TEST(LinkModelFluid, TwoFlowsShareFairly) {
  Fixture f({0, 0, 0, 0}, hybrid_opts(), /*hosts_per_router=*/2);
  // hosts: r0 -> {4,5}, r1 -> {6,7}, r2 -> {8,9}, r3 -> {10,11}
  ASSERT_TRUE(f.sim->start_background_flow(*f.engine, 0, 4, 10, 1000000, 0));
  ASSERT_TRUE(f.sim->start_background_flow(*f.engine, 0, 5, 11, 1000000, 1));
  f.engine->run();
  auto recs = f.sim->flow_records();
  ASSERT_EQ(recs.size(), 2u);
  for (const FlowRecord& r : recs) {
    EXPECT_FALSE(r.failed);
    EXPECT_NEAR(r.duration_s(), 0.16, 0.02);
  }
}

// Halving the capacity via a loss burst halves the max-min rate.
TEST(LinkModelFluid, LossScalesRate) {
  Fixture f({0, 0, 0, 0}, hybrid_opts());
  f.sim->link_model().schedule_loss_state(*f.engine, 1, microseconds(1), 0.5);
  ASSERT_TRUE(f.sim->start_background_flow(*f.engine, milliseconds(5),
                                           f.host(0), f.host(3), 1000000, 0));
  f.engine->run();
  const auto recs = f.sim->flow_records();
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_FALSE(recs[0].failed);
  EXPECT_NEAR(recs[0].duration_s(), 0.16, 0.02);
}

// A downed transit link with no alternate path stalls the flow at zero
// rate until the stall timeout fails it — the analytic mirror of TCP's
// give-up-after-consecutive-timeouts.
TEST(LinkModelFluid, DownLinkStallFailsFlow) {
  NetSimOptions no = hybrid_opts();
  no.link_model.fluid_stall_timeout_s = 0.5;
  Fixture f({0, 0, 0, 0}, no);
  f.sim->link_model().schedule_link_state(*f.engine, 1, microseconds(1),
                                          false);
  ASSERT_TRUE(f.sim->start_background_flow(*f.engine, milliseconds(5),
                                           f.host(0), f.host(3), 1000000, 0));
  f.engine->run();
  const auto recs = f.sim->flow_records();
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_TRUE(recs[0].failed);
  EXPECT_GE(to_seconds(recs[0].finished_at), 0.5);
  const auto* fluid =
      dynamic_cast<const FluidLinkModel*>(&f.sim->link_model());
  ASSERT_NE(fluid, nullptr);
  EXPECT_EQ(fluid->bg_counters().failed, 1u);
  EXPECT_EQ(fluid->active_background_flows(), 0u);
}

// ---- flow <-> packet coupling ----------------------------------------------

// packet -> fluid: measured packet throughput on the shared line shrinks
// the capacity the water-fill hands to the background flow.
TEST(LinkModelCoupling, PacketTrafficSlowsFluidFlow) {
  const auto run_fluid = [](bool with_packet_traffic) {
    Fixture f({0, 0, 0, 0}, hybrid_opts(), /*hosts_per_router=*/2);
    if (with_packet_traffic) {
      // Packet TCP churn across the same line, started just before the
      // fluid flow so the first recompute already sees measured bytes.
      for (int i = 0; i < 4; ++i) {
        f.sim->start_flow(*f.engine, milliseconds(1 + i), 4, 10,
                          2000000, 100 + i);
      }
    }
    f.sim->start_background_flow(*f.engine, milliseconds(40), 5, 11, 2000000,
                                 0);
    f.engine->run();
    for (const FlowRecord& r : f.sim->flow_records()) {
      if (r.flow & FluidLinkModel::kFluidFlowBit) return r.duration_s();
    }
    return -1.0;
  };
  const double alone = run_fluid(false);
  const double contended = run_fluid(true);
  ASSERT_GT(alone, 0.0);
  ASSERT_GT(contended, 0.0);
  EXPECT_NEAR(alone, 0.16, 0.02);  // 2 MB at the full 1e8 bps
  EXPECT_GT(contended, alone + 0.005);
}

// fluid -> packet: a saturating background flow shrinks the bandwidth the
// packet path sees, but never below the configured floor — the packet
// flow still completes, just slower.
TEST(LinkModelCoupling, FluidReservationSlowsButNeverStarvesPackets) {
  const auto run_packet = [](bool with_fluid) {
    Fixture f({0, 0, 0, 0}, hybrid_opts(), /*hosts_per_router=*/2);
    if (with_fluid) {
      // Long-lived saturating flow admitted well before the packet flow.
      f.sim->start_background_flow(*f.engine, 0, 4, 10, 400000000, 0);
    }
    f.sim->start_flow(*f.engine, milliseconds(100), 5, 11, 1000000, 1);
    f.engine->run();
    for (const FlowRecord& r : f.sim->flow_records()) {
      if ((r.flow & FluidLinkModel::kFluidFlowBit) == 0) {
        return r.failed ? -1.0 : r.duration_s();
      }
    }
    return -1.0;
  };
  const double clear = run_packet(false);
  const double contended = run_packet(true);
  ASSERT_GT(clear, 0.0);
  ASSERT_GT(contended, 0.0) << "packet flow starved by fluid reservation";
  EXPECT_GT(contended, clear);
}

// Fluid bytes show up in the link accounting at boundary granularity.
TEST(LinkModelFluid, FluidBytesAccrueIntoLinkStats) {
  Fixture f({0, 0, 0, 0}, hybrid_opts());
  ASSERT_TRUE(f.sim->start_background_flow(*f.engine, 0, f.host(0), f.host(3),
                                           1000000, 0));
  f.engine->run();
  const auto& bytes = f.sim->link_model().link_bytes();
  // Every slot on the forward path carried the megabyte (within rounding).
  for (const std::uint64_t slot_bytes :
       {bytes[0 * 2 + 0], bytes[1 * 2 + 0], bytes[2 * 2 + 0]}) {
    EXPECT_NEAR(static_cast<double>(slot_bytes), 1e6, 1e4);
  }
}

// ---- determinism across executors ------------------------------------------

struct RunResult {
  std::vector<FlowRecord> records;
  NetSim::Counters totals;
};

RunResult run_mixed(std::int32_t threads) {
  Fixture f({0, 0, 1, 1}, hybrid_opts(), /*hosts_per_router=*/2,
            seconds(10));
  // Mixed fidelity crossing the LP boundary both ways: fluid background
  // flows plus packet TCP, so the conversion state at shared links is
  // exercised under both executors.
  f.sim->start_background_flow(*f.engine, 0, 4, 10, 3000000, 0);
  f.sim->start_background_flow(*f.engine, 0, 5, 11, 1000000, 1);
  f.sim->start_background_flow(*f.engine, milliseconds(30), 10, 4, 2000000,
                               2);
  f.sim->start_flow(*f.engine, milliseconds(1), 6, 8, 500000, 100);
  f.sim->start_flow(*f.engine, milliseconds(2), 9, 7, 500000, 101);
  if (threads > 0) {
    f.engine->run_threaded(threads);
  } else {
    f.engine->run();
  }
  RunResult r;
  r.records = f.sim->flow_records();
  std::sort(r.records.begin(), r.records.end(),
            [](const FlowRecord& a, const FlowRecord& b) {
              return a.flow < b.flow;
            });
  r.totals = f.sim->totals();
  return r;
}

TEST(LinkModelDeterminism, HybridSequentialEqualsThreaded) {
  const RunResult seq = run_mixed(0);
  const RunResult thr2 = run_mixed(2);
  ASSERT_EQ(seq.records.size(), thr2.records.size());
  ASSERT_EQ(seq.records.size(), 5u);
  for (std::size_t i = 0; i < seq.records.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(seq.records[i].flow, thr2.records[i].flow);
    EXPECT_EQ(seq.records[i].src, thr2.records[i].src);
    EXPECT_EQ(seq.records[i].dst, thr2.records[i].dst);
    EXPECT_EQ(seq.records[i].bytes, thr2.records[i].bytes);
    EXPECT_EQ(seq.records[i].started_at, thr2.records[i].started_at);
    EXPECT_EQ(seq.records[i].finished_at, thr2.records[i].finished_at);
    EXPECT_EQ(seq.records[i].failed, thr2.records[i].failed);
  }
  EXPECT_EQ(seq.totals.forwarded, thr2.totals.forwarded);
  EXPECT_EQ(seq.totals.delivered, thr2.totals.delivered);
  EXPECT_EQ(seq.totals.flows_completed, thr2.totals.flows_completed);
}

// ---- checkpoint participation ----------------------------------------------

// Mid-run hybrid state (active flows, published reservations, measured
// packet rates) round-trips: save -> load into a fresh stack -> save again
// must be byte-identical.
TEST(LinkModelCkpt, HybridStateRoundTripsByteIdentical) {
  NetSimOptions no = hybrid_opts();
  const auto build = [&no]() {
    return std::make_unique<Fixture>(std::vector<LpId>{0, 0, 0, 0}, no, 2,
                                     /*end=*/milliseconds(60));
  };
  auto a = build();
  // Still in flight at the 60 ms horizon: 8 MB at <= 1e8 bps.
  a->sim->start_background_flow(*a->engine, 0, 4, 10, 8000000, 0);
  a->sim->start_background_flow(*a->engine, 0, 5, 11, 8000000, 1);
  a->sim->start_flow(*a->engine, milliseconds(1), 6, 8, 2000000, 100);
  a->engine->run();
  const auto* fluid_a =
      dynamic_cast<const FluidLinkModel*>(&a->sim->link_model());
  ASSERT_NE(fluid_a, nullptr);
  ASSERT_GT(fluid_a->active_background_flows(), 0u) << "horizon too late";

  ckpt::Writer wa;
  a->sim->save(wa);

  auto b = build();
  ckpt::Reader r(wa.buffer().data(), wa.size());
  ASSERT_TRUE(b->sim->load(r));
  ckpt::Writer wb;
  b->sim->save(wb);
  EXPECT_EQ(wa.buffer(), wb.buffer());

  const auto* fluid_b =
      dynamic_cast<const FluidLinkModel*>(&b->sim->link_model());
  ASSERT_NE(fluid_b, nullptr);
  EXPECT_EQ(fluid_a->active_background_flows(),
            fluid_b->active_background_flows());
  EXPECT_EQ(fluid_a->bg_counters().started, fluid_b->bg_counters().started);
}

// A packet-model checkpoint must refuse to load into a hybrid stack (and
// vice versa): the kind marker guards the section shape.
TEST(LinkModelCkpt, KindMarkerRejectsCrossModelRestore) {
  Fixture packet({0, 0, 0, 0}, packet_opts());
  ckpt::Writer w;
  packet.sim->save(w);

  Fixture hybrid({0, 0, 0, 0}, hybrid_opts());
  ckpt::Reader r(w.buffer().data(), w.size());
  EXPECT_FALSE(hybrid.sim->load(r));
}

// ---- one-PR deprecation shims ----------------------------------------------

TEST(LinkModelShims, DeprecatedNetSimCallsDelegateToModel) {
  Fixture f({0, 0, 0, 0}, packet_opts());
  // Accessors return the model's own state.
  EXPECT_EQ(&f.sim->link_bytes(), &f.sim->link_model().link_bytes());
  // Control-plane shims reach the model: a downed access link drops.
  f.sim->schedule_link_state(*f.engine, 3, microseconds(1), false);
  f.sim->schedule_loss_state(*f.engine, 0, microseconds(1), 0.0);
  f.sim->start_flow(*f.engine, milliseconds(5), f.host(0), f.host(3), 10000,
                    0);
  f.engine->run();
  EXPECT_GT(f.sim->totals().dropped_link_down, 0u);
  EXPECT_EQ(f.sim->link_utilization(3, 0, seconds(1)), 0.0);
}

}  // namespace
}  // namespace massf
