#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <numeric>

#include "partition/fm.hpp"
#include "partition/matching.hpp"
#include "partition/greedy_kcluster.hpp"
#include "partition/partition.hpp"
#include "util/rng.hpp"

namespace massf {
namespace {

// Ring of n vertices with unit weights, plus random chords.
Graph random_graph(VertexId n, std::int32_t chords, std::uint64_t seed,
                   Weight max_vweight = 1) {
  Rng rng(seed);
  GraphBuilder b(n);
  for (VertexId v = 0; v < n; ++v) {
    b.add_edge(v, (v + 1) % n, static_cast<Weight>(1 + rng.uniform(9)));
    if (max_vweight > 1) {
      b.set_vertex_weight(
          v, static_cast<Weight>(1 + rng.uniform(
                 static_cast<std::uint64_t>(max_vweight))));
    }
  }
  for (std::int32_t c = 0; c < chords; ++c) {
    const auto u = static_cast<VertexId>(rng.uniform(n));
    const auto v = static_cast<VertexId>(rng.uniform(n));
    if (u != v) b.add_edge(u, v, static_cast<Weight>(1 + rng.uniform(9)));
  }
  return b.build();
}

TEST(HeavyEdgeMatching, ShrinksGraph) {
  const Graph g = random_graph(200, 100, 1);
  Rng rng(2);
  const MatchingResult m = heavy_edge_matching(g, rng);
  EXPECT_LT(m.num_coarse, g.num_vertices());
  EXPECT_GE(m.num_coarse, g.num_vertices() / 2);
  // Every coarse vertex has 1 or 2 members.
  std::vector<int> members(static_cast<std::size_t>(m.num_coarse), 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ++members[static_cast<std::size_t>(
        m.coarse_map[static_cast<std::size_t>(v)])];
  }
  for (int c : members) {
    EXPECT_GE(c, 1);
    EXPECT_LE(c, 2);
  }
}

TEST(FmRefine, ReducesCutOfBadBisection) {
  // Two cliques joined by one edge; a deliberately interleaved assignment.
  GraphBuilder b(8);
  for (VertexId i = 0; i < 4; ++i) {
    for (VertexId j = i + 1; j < 4; ++j) {
      b.add_edge(i, j, 10);
      b.add_edge(i + 4, j + 4, 10);
    }
  }
  b.add_edge(0, 4, 1);
  const Graph g = b.build();

  std::vector<VertexId> part{0, 1, 0, 1, 0, 1, 0, 1};
  FmOptions opts;
  opts.target0 = g.total_vertex_weight() / 2;
  opts.tolerance = 1.1;
  const Weight cut = fm_refine_bisection(g, part, opts);
  EXPECT_EQ(cut, 1);  // optimal: split between the cliques
  EXPECT_EQ(cut, compute_edge_cut(g, part));
}

TEST(FmRefine, RespectsBalance) {
  const Graph g = random_graph(100, 50, 3);
  std::vector<VertexId> part(100);
  for (VertexId v = 0; v < 100; ++v) part[static_cast<std::size_t>(v)] = v % 2;
  FmOptions opts;
  opts.target0 = g.total_vertex_weight() / 2;
  opts.tolerance = 1.05;
  fm_refine_bisection(g, part, opts);
  const auto pw = compute_part_weights(g, part, 2);
  const double ideal = static_cast<double>(g.total_vertex_weight()) / 2;
  EXPECT_LE(static_cast<double>(pw[0]), ideal * 1.06);
  EXPECT_LE(static_cast<double>(pw[1]), ideal * 1.06);
}

TEST(FmRefine, PinnedVerticesNeverMove) {
  // Same two-clique instance as ReducesCutOfBadBisection, but half the
  // vertices are pinned where the bad assignment put them — the refinement
  // must improve what it can without touching them.
  GraphBuilder b(8);
  for (VertexId i = 0; i < 4; ++i) {
    for (VertexId j = i + 1; j < 4; ++j) {
      b.add_edge(i, j, 10);
      b.add_edge(i + 4, j + 4, 10);
    }
  }
  b.add_edge(0, 4, 1);
  const Graph g = b.build();

  std::vector<VertexId> part{0, 1, 0, 1, 0, 1, 0, 1};
  const std::vector<VertexId> before = part;
  const std::vector<char> pinned{1, 0, 1, 0, 1, 0, 1, 0};
  FmOptions opts;
  opts.target0 = g.total_vertex_weight() / 2;
  opts.tolerance = 1.1;
  opts.pinned = pinned;
  fm_refine_bisection(g, part, opts);
  for (std::size_t i = 0; i < part.size(); ++i) {
    if (pinned[i]) EXPECT_EQ(part[i], before[i]) << "pinned vertex " << i;
  }
}

TEST(FmRefine, MaxMovesBoundsNetMoves) {
  const Graph g = random_graph(120, 80, 5);
  std::vector<VertexId> part(120);
  for (VertexId v = 0; v < 120; ++v) {
    part[static_cast<std::size_t>(v)] = v % 2;
  }
  const std::vector<VertexId> before = part;
  FmOptions opts;
  opts.target0 = g.total_vertex_weight() / 2;
  opts.tolerance = 1.10;
  opts.max_moves = 3;
  fm_refine_bisection(g, part, opts);
  std::int32_t net_moved = 0;
  for (std::size_t i = 0; i < part.size(); ++i) {
    net_moved += part[i] != before[i] ? 1 : 0;
  }
  EXPECT_LE(net_moved, 3);
}

TEST(FmRefine, UnboundedMovesMoreThanBounded) {
  // Sanity that the bound actually bites on an instance the unbounded
  // refinement reshuffles heavily.
  const Graph g = random_graph(120, 80, 5);
  std::vector<VertexId> bounded(120), unbounded(120);
  for (VertexId v = 0; v < 120; ++v) {
    bounded[static_cast<std::size_t>(v)] =
        unbounded[static_cast<std::size_t>(v)] = v % 2;
  }
  FmOptions opts;
  opts.target0 = g.total_vertex_weight() / 2;
  opts.tolerance = 1.10;
  const Weight cut_unbounded = fm_refine_bisection(g, unbounded, opts);
  opts.max_moves = 2;
  const Weight cut_bounded = fm_refine_bisection(g, bounded, opts);
  EXPECT_LE(cut_unbounded, cut_bounded)
      << "a net-move bound cannot beat the unbounded refinement";
}

struct KwayCase {
  VertexId n;
  std::int32_t chords;
  std::int32_t k;
  Weight max_vweight;
};

class PartitionSweep : public ::testing::TestWithParam<KwayCase> {};

TEST_P(PartitionSweep, BalancedCoveringPartition) {
  const KwayCase c = GetParam();
  const Graph g = random_graph(c.n, c.chords, 17, c.max_vweight);
  PartitionOptions opts;
  opts.num_parts = c.k;
  opts.imbalance_tolerance = 1.10;
  opts.seed = 5;
  const PartitionResult r = partition_graph(g, opts);

  ASSERT_EQ(static_cast<VertexId>(r.part.size()), g.num_vertices());
  // Every vertex assigned to a valid part.
  for (VertexId p : r.part) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, c.k);
  }
  // Reported weights and cut are consistent with the assignment.
  EXPECT_EQ(r.part_weights, compute_part_weights(g, r.part, c.k));
  EXPECT_EQ(r.edge_cut, compute_edge_cut(g, r.part));
  // All parts non-empty.
  for (Weight w : r.part_weights) EXPECT_GT(w, 0);
  // Balance within (slightly padded) tolerance. Multilevel partitioners can
  // overshoot slightly on tiny graphs with heavy vertices.
  const double max_unit = c.max_vweight > 1 ? 1.35 : 1.15;
  EXPECT_LE(r.balance(g.total_vertex_weight()), max_unit)
      << "n=" << c.n << " k=" << c.k;
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, PartitionSweep,
    ::testing::Values(KwayCase{64, 32, 2, 1}, KwayCase{64, 32, 3, 1},
                      KwayCase{200, 100, 4, 1}, KwayCase{200, 100, 7, 1},
                      KwayCase{500, 400, 8, 1}, KwayCase{500, 400, 16, 1},
                      KwayCase{1000, 800, 13, 1}, KwayCase{300, 200, 5, 50},
                      KwayCase{1000, 500, 16, 20}));

TEST(Partition, DeterministicForSeed) {
  const Graph g = random_graph(300, 200, 7);
  PartitionOptions opts;
  opts.num_parts = 6;
  opts.seed = 99;
  const PartitionResult a = partition_graph(g, opts);
  const PartitionResult b = partition_graph(g, opts);
  EXPECT_EQ(a.part, b.part);
  EXPECT_EQ(a.edge_cut, b.edge_cut);
}

TEST(Partition, SinglePartTrivial) {
  const Graph g = random_graph(50, 20, 8);
  PartitionOptions opts;
  opts.num_parts = 1;
  const PartitionResult r = partition_graph(g, opts);
  EXPECT_EQ(r.edge_cut, 0);
  for (VertexId p : r.part) EXPECT_EQ(p, 0);
}

TEST(Partition, BeatsRandomAssignmentOnCut) {
  const Graph g = random_graph(400, 100, 9);
  PartitionOptions opts;
  opts.num_parts = 4;
  const PartitionResult r = partition_graph(g, opts);

  Rng rng(10);
  Weight random_cut_total = 0;
  const int trials = 5;
  for (int t = 0; t < trials; ++t) {
    std::vector<VertexId> rand_part(static_cast<std::size_t>(g.num_vertices()));
    for (auto& p : rand_part) p = static_cast<VertexId>(rng.uniform(4));
    random_cut_total += compute_edge_cut(g, rand_part);
  }
  EXPECT_LT(r.edge_cut, random_cut_total / trials / 2);
}

TEST(Partition, TwoCliquesOptimal) {
  GraphBuilder b(20);
  for (VertexId i = 0; i < 10; ++i) {
    for (VertexId j = i + 1; j < 10; ++j) {
      b.add_edge(i, j, 5);
      b.add_edge(i + 10, j + 10, 5);
    }
  }
  b.add_edge(0, 10, 1);
  const Graph g = b.build();
  PartitionOptions opts;
  opts.num_parts = 2;
  const PartitionResult r = partition_graph(g, opts);
  EXPECT_EQ(r.edge_cut, 1);
}

TEST(GreedyKCluster, CoversAllVertices) {
  const Graph g = random_graph(200, 100, 4);
  Rng rng(9);
  const auto part = greedy_k_cluster(g, 7, rng);
  std::vector<int> sizes(7, 0);
  for (VertexId p : part) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, 7);
    ++sizes[static_cast<std::size_t>(p)];
  }
  for (int s : sizes) EXPECT_GT(s, 0);
}

TEST(GreedyKCluster, DeterministicForSeed) {
  const Graph g = random_graph(150, 60, 5);
  Rng a(3), b(3);
  EXPECT_EQ(greedy_k_cluster(g, 5, a), greedy_k_cluster(g, 5, b));
}

TEST(GreedyKCluster, HandlesDisconnectedGraph) {
  GraphBuilder builder(10);
  builder.add_edge(0, 1);
  builder.add_edge(2, 3);  // vertices 4..9 isolated
  const Graph g = builder.build();
  Rng rng(1);
  const auto part = greedy_k_cluster(g, 3, rng);
  for (VertexId p : part) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 3);
  }
}

TEST(GreedyKCluster, WorseCutThanMultilevel) {
  // The whole point of the baseline: unweighted region growing produces a
  // worse weighted cut than the multilevel partitioner.
  const Graph g = random_graph(500, 400, 6);
  Rng rng(2);
  const auto greedy = greedy_k_cluster(g, 8, rng);
  PartitionOptions opts;
  opts.num_parts = 8;
  const PartitionResult ml = partition_graph(g, opts);
  EXPECT_GT(compute_edge_cut(g, greedy), ml.edge_cut);
}

TEST(MinCutEdgeAux, FindsMinimum) {
  GraphBuilder b(4);
  b.add_edge(0, 1, 1);
  b.add_edge(1, 2, 1);
  b.add_edge(2, 3, 1);
  const Graph g = b.build();
  const std::vector<VertexId> part{0, 0, 1, 1};
  // Edge ids sorted by (u, v): (0,1), (1,2), (2,3).
  const std::vector<std::int64_t> aux{100, 42, 7};
  EXPECT_EQ(min_cut_edge_aux(g, part, aux), 42);
}

TEST(MinCutEdgeAux, NoCutReturnsMax) {
  GraphBuilder b(2);
  b.add_edge(0, 1, 1);
  const Graph g = b.build();
  const std::vector<VertexId> part{0, 0};
  const std::vector<std::int64_t> aux{5};
  EXPECT_EQ(min_cut_edge_aux(g, part, aux),
            std::numeric_limits<std::int64_t>::max());
}

}  // namespace
}  // namespace massf
