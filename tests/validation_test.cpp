// Transport validation: quantitative checks of the packet-level models
// against transport theory — the kind of accuracy validation the paper
// performed for MaSSF against real testbeds. Uses the flow-record
// (NetFlow-style) collection.
#include <gtest/gtest.h>

#include <memory>

#include "net/netsim.hpp"
#include "routing/forwarding.hpp"

namespace massf {
namespace {

// h(N) - r0 --bottleneck-- r1 - h(N+1..): a classic dumbbell.
Network dumbbell(int hosts_per_side, double bottleneck_bps,
                 SimTime bottleneck_latency) {
  Network net;
  for (int i = 0; i < 2; ++i) {
    NetNode r;
    r.kind = NodeKind::kRouter;
    net.nodes.push_back(r);
  }
  net.num_routers = 2;
  const auto link = [&](NodeId a, NodeId b, SimTime lat, double bw) {
    NetLink l;
    l.a = a;
    l.b = b;
    l.latency = lat;
    l.bandwidth_bps = bw;
    net.links.push_back(l);
  };
  link(0, 1, bottleneck_latency, bottleneck_bps);
  for (int side = 0; side < 2; ++side) {
    for (int i = 0; i < hosts_per_side; ++i) {
      NetNode h;
      h.kind = NodeKind::kHost;
      h.attach_router = side;
      const auto hid = static_cast<NodeId>(net.nodes.size());
      net.nodes.push_back(h);
      link(side, hid, microseconds(10), 1e9);  // fat access links
    }
  }
  net.build_adjacency();
  return net;
}

struct Rig {
  Rig(int hosts_per_side, double bottleneck_bps, SimTime bottleneck_latency,
      SimTime end, double queue_bytes = 256 * 1024)
      : net(dumbbell(hosts_per_side, bottleneck_bps, bottleneck_latency)),
        fp(ForwardingPlane::build_flat(net, std::vector<NodeId>{0, 1})) {
    EngineOptions eo;
    eo.lookahead = std::min<SimTime>(bottleneck_latency, milliseconds(1));
    eo.end_time = end;
    engine = std::make_unique<Engine>(eo);
    NetSimOptions no;
    no.collect_flow_records = true;
    no.queue_capacity_bytes = queue_bytes;
    sim = std::make_unique<NetSim>(
        net, fp, std::vector<LpId>{0, 0}, *engine, no);
  }
  NodeId left(int i) const { return net.num_routers + i; }
  NodeId right(int i) const {
    return net.num_routers + (static_cast<NodeId>(net.num_hosts()) / 2) + i;
  }
  Network net;
  ForwardingPlane fp;
  std::unique_ptr<Engine> engine;
  std::unique_ptr<NetSim> sim;
};

TEST(Validation, SoloFlowSaturatesBottleneck) {
  Rig rig(2, 1e7, milliseconds(2), seconds(120));
  rig.sim->start_flow(*rig.engine, milliseconds(1), rig.left(0),
                      rig.right(0), 10'000'000, 1);
  rig.engine->run();
  const auto records = rig.sim->flow_records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_FALSE(records[0].failed);
  // Goodput within [70%, 100%] of the 10 Mbps bottleneck (headers +
  // slow start eat the rest).
  EXPECT_GT(records[0].goodput_bps(), 0.70e7);
  EXPECT_LT(records[0].goodput_bps(), 1.0e7);
}

TEST(Validation, TwoFlowsShareBottleneckFairly) {
  Rig rig(2, 1e7, milliseconds(2), seconds(240));
  rig.sim->start_flow(*rig.engine, milliseconds(1), rig.left(0),
                      rig.right(0), 6'000'000, 1);
  rig.sim->start_flow(*rig.engine, milliseconds(1), rig.left(1),
                      rig.right(1), 6'000'000, 2);
  rig.engine->run();
  const auto records = rig.sim->flow_records();
  ASSERT_EQ(records.size(), 2u);
  // Reno flows with equal RTT should split the pipe roughly evenly: the
  // slower flow gets at least ~55% of the faster one's goodput.
  const double g0 = records[0].goodput_bps();
  const double g1 = records[1].goodput_bps();
  const double ratio = std::min(g0, g1) / std::max(g0, g1);
  EXPECT_GT(ratio, 0.55) << "g0=" << g0 << " g1=" << g1;
  // Combined goodput still bounded by the bottleneck.
  // (They only overlap for part of their lifetimes, so the sum of
  // individual goodputs may legitimately exceed capacity; check each.)
  EXPECT_LT(g0, 1.0e7);
  EXPECT_LT(g1, 1.0e7);
}

TEST(Validation, LongerRttSlowsSlowStart) {
  // Same transfer over 1 ms vs 20 ms bottleneck RTT: the long-RTT flow
  // must take longer despite identical bandwidth (window ramp-up is
  // RTT-clocked).
  const auto run_with = [](SimTime lat) {
    Rig rig(1, 1e8, lat, seconds(120));
    rig.sim->start_flow(*rig.engine, milliseconds(1), rig.left(0),
                        rig.right(0), 1'000'000, 1);
    rig.engine->run();
    const auto records = rig.sim->flow_records();
    EXPECT_EQ(records.size(), 1u);
    return records.empty() ? 0.0 : records[0].duration_s();
  };
  const double fast = run_with(milliseconds(1));
  const double slow = run_with(milliseconds(20));
  EXPECT_GT(slow, 2 * fast);
}

TEST(Validation, CongestionCausesLossesButAllComplete) {
  // Six flows into a 5 Mbps bottleneck with a small buffer: drop-tail
  // losses are inevitable, Reno recovers, everyone finishes.
  Rig rig(6, 5e6, milliseconds(5), seconds(600), /*queue_bytes=*/16 * 1024);
  for (int i = 0; i < 6; ++i) {
    rig.sim->start_flow(*rig.engine, milliseconds(1 + i), rig.left(i),
                        rig.right(i), 1'000'000,
                        static_cast<std::uint32_t>(i));
  }
  rig.engine->run();
  const auto records = rig.sim->flow_records();
  ASSERT_EQ(records.size(), 6u);
  std::uint32_t retransmits = 0;
  for (const auto& r : records) {
    EXPECT_FALSE(r.failed);
    retransmits += r.retransmits;
  }
  EXPECT_GT(rig.sim->totals().dropped_queue, 0u);
  EXPECT_GT(retransmits, 0u);
}

TEST(Validation, FlowRecordsAccounting) {
  Rig rig(1, 1e8, milliseconds(1), seconds(60));
  rig.sim->start_flow(*rig.engine, milliseconds(5), rig.left(0),
                      rig.right(0), 40'000, 77);
  rig.engine->run();
  const auto records = rig.sim->flow_records();
  ASSERT_EQ(records.size(), 1u);
  const FlowRecord& r = records[0];
  EXPECT_EQ(r.bytes, 40'000u);
  EXPECT_EQ(r.tag, 77u);
  EXPECT_EQ(r.started_at, milliseconds(5));
  EXPECT_GT(r.finished_at, r.started_at);
  EXPECT_EQ(r.retransmits, 0u);
  EXPECT_EQ(r.src, rig.left(0));
  EXPECT_EQ(r.dst, rig.right(0));
}

}  // namespace
}  // namespace massf
