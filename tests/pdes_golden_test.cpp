// Golden-trace regression gate for the PDES hot path.
//
// Pins the event-trace checksum of the bench_pdes workload (lps=32,
// chain=64, hops=2000 — the exact configuration behind BENCH_pdes.json) so
// a scheduler refactor that silently reorders events fails loudly instead
// of shipping a perturbed trace with a plausible-looking speedup. The
// checksum folds every handled event's timestamp per LP and then across
// LPs, so any change to execution order, event count, or LP assignment
// moves it. The pinned value dates from the seed executor
// (std::priority_queue scheduler, static round-robin threading); the
// arena-heap/work-claiming engine must keep matching it at every thread
// count.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "pdes/engine.hpp"

namespace massf {
namespace {

// The BENCH_pdes.json workload checksum, unchanged since the seed engine.
constexpr std::uint64_t kGoldenChecksum = 807988445054369792ULL;
constexpr std::uint64_t kGoldenEvents = 4162080ULL;
constexpr std::uint64_t kGoldenWindows = 2001ULL;

constexpr std::int32_t kEvHop = 1;
constexpr std::int32_t kEvLocal = 2;

// Mirrors RingLp in bench/bench_pdes.cpp: a ring of LPs forwarding hop
// events at exactly the lookahead, each hop spawning a same-window
// self-chain.
class RingLp final : public LogicalProcess {
 public:
  RingLp(LpId next, std::int64_t chain) : next_(next), chain_(chain) {}

  void handle(Engine& engine, const Event& ev) override {
    checksum = checksum * 1099511628211ULL + static_cast<std::uint64_t>(ev.time);
    if (ev.type == kEvHop) {
      if (ev.a > 0) {
        engine.schedule(next_, ev.time + engine.options().lookahead, kEvHop,
                        ev.a - 1);
      }
      if (chain_ > 0) {
        engine.schedule(engine.current_lp(), ev.time + microseconds(1),
                        kEvLocal, static_cast<std::uint64_t>(chain_ - 1));
      }
    } else if (ev.a > 0) {
      engine.schedule(engine.current_lp(), ev.time + microseconds(1), kEvLocal,
                      ev.a - 1);
    }
  }

  std::uint64_t checksum = 0;

 private:
  LpId next_;
  std::int64_t chain_;
};

std::uint64_t run_bench_workload(std::int32_t threads, RunStats* out_stats,
                                 SyncMode sync = SyncMode::kBarrier) {
  constexpr std::int64_t kLps = 32;
  constexpr std::int64_t kChain = 64;
  constexpr std::uint64_t kHops = 2000;

  EngineOptions o;
  o.lookahead = milliseconds(1);
  o.end_time = seconds(3600);
  o.sync = sync;
  Engine engine(o);
  std::vector<RingLp*> lps;
  for (std::int64_t i = 0; i < kLps; ++i) {
    auto lp =
        std::make_unique<RingLp>(static_cast<LpId>((i + 1) % kLps), kChain);
    lps.push_back(lp.get());
    engine.add_lp(std::move(lp));
  }
  for (std::int64_t i = 0; i < kLps; ++i) {
    engine.schedule(static_cast<LpId>(i), 0, kEvHop, kHops);
  }
  *out_stats = threads > 0 ? engine.run_threaded(threads) : engine.run();

  std::uint64_t checksum = 0;
  for (const RingLp* lp : lps) checksum = checksum * 31 + lp->checksum;
  return checksum;
}

TEST(PdesGoldenTrace, SequentialMatchesPinnedChecksum) {
  RunStats stats;
  EXPECT_EQ(run_bench_workload(0, &stats), kGoldenChecksum);
  EXPECT_EQ(stats.total_events, kGoldenEvents);
  EXPECT_EQ(stats.num_windows, kGoldenWindows);
}

// Both threaded synchronization protocols must keep the pinned trace at
// every thread count (the channel-clock executor's whole claim is that it
// changes who waits on whom, not what happens — DESIGN.md section 5g).
class PdesGoldenTraceThreaded
    : public ::testing::TestWithParam<std::tuple<int, SyncMode>> {};

TEST_P(PdesGoldenTraceThreaded, MatchesPinnedChecksum) {
  RunStats stats;
  EXPECT_EQ(run_bench_workload(std::get<0>(GetParam()), &stats,
                               std::get<1>(GetParam())),
            kGoldenChecksum);
  EXPECT_EQ(stats.total_events, kGoldenEvents);
  EXPECT_EQ(stats.num_windows, kGoldenWindows);
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsBySync, PdesGoldenTraceThreaded,
    ::testing::Combine(::testing::Values(1, 2, 4),
                       ::testing::Values(SyncMode::kBarrier,
                                         SyncMode::kChannel)),
    [](const ::testing::TestParamInfo<std::tuple<int, SyncMode>>& info) {
      return sync_mode_name(std::get<1>(info.param)) + std::string("_t") +
             std::to_string(std::get<0>(info.param));
    });

}  // namespace
}  // namespace massf
