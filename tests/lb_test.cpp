#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "lb/graph_prep.hpp"
#include "lb/hierarchical.hpp"
#include "lb/mapping.hpp"
#include "lb/profile.hpp"
#include "partition/partition.hpp"
#include "topology/brite.hpp"

namespace massf {
namespace {

Network test_network(std::int32_t routers = 400, std::uint64_t seed = 21) {
  BriteOptions o;
  o.num_routers = routers;
  o.num_hosts = routers / 4;
  o.seed = seed;
  return generate_flat(o);
}

MappingOptions base_opts(std::int32_t engines = 8) {
  MappingOptions o;
  o.num_engines = engines;
  o.cluster.num_engine_nodes = engines;
  o.seed = 3;
  return o;
}

TEST(MappingKindHelpers, NamesAndPredicates) {
  EXPECT_STREQ(mapping_kind_name(MappingKind::kHProf), "HPROF");
  EXPECT_STREQ(mapping_kind_name(MappingKind::kTop2), "TOP2");
  EXPECT_TRUE(mapping_uses_profile(MappingKind::kProf));
  EXPECT_TRUE(mapping_uses_profile(MappingKind::kHProf));
  EXPECT_FALSE(mapping_uses_profile(MappingKind::kHTop));
  EXPECT_TRUE(mapping_is_hierarchical(MappingKind::kHTop));
  EXPECT_FALSE(mapping_is_hierarchical(MappingKind::kProf2));
}

TEST(GraphPrep, TopWeightsAreIncidentBandwidth) {
  const Network net = test_network(100);
  const auto w = top_vertex_weights(net);
  ASSERT_EQ(static_cast<NodeId>(w.size()), net.num_routers);
  // Recompute for one router by hand.
  const NodeId r = 0;
  Weight expect = 0;
  for (const auto& inc : net.incident(r)) {
    expect += static_cast<Weight>(
        net.links[static_cast<std::size_t>(inc.link)].bandwidth_bps / 1e6);
  }
  EXPECT_EQ(w[0], std::max<Weight>(expect, 1));
}

TEST(GraphPrep, ProfWeightsFromProfile) {
  const Network net = test_network(100);
  TrafficProfile p;
  p.router_events.assign(static_cast<std::size_t>(net.num_routers), 0);
  p.router_events[7] = 999;
  const auto w = prof_vertex_weights(net, p);
  EXPECT_EQ(w[7], 1000);  // +1 floor
  EXPECT_EQ(w[8], 1);
}

TEST(GraphPrep, PlainEdgeWeightInverseLatency) {
  EXPECT_EQ(edge_weight_plain(milliseconds(1)), 1000);
  EXPECT_EQ(edge_weight_plain(microseconds(10)), 100000);
  EXPECT_GT(edge_weight_plain(microseconds(50)),
            edge_weight_plain(milliseconds(5)));
  // Clamped at 1 for huge latencies.
  EXPECT_EQ(edge_weight_plain(seconds(100)), 1);
}

TEST(GraphPrep, TunedWeightsAmplifySmallLatencies) {
  const std::vector<std::int64_t> lats{microseconds(10), milliseconds(1),
                                       milliseconds(10)};
  const auto plain0 = edge_weight_plain(lats[0]);
  const auto plain1 = edge_weight_plain(lats[1]);
  const auto tuned = edge_weights_tuned(lats, 2.0);
  // The tuned ratio between the 10us and 1ms edges must exceed the plain
  // ratio (that is the entire point of the TOP2/PROF2 adjustment).
  const double plain_ratio =
      static_cast<double>(plain0) / static_cast<double>(plain1);
  const double tuned_ratio =
      static_cast<double>(tuned[0]) / static_cast<double>(tuned[1]);
  EXPECT_GT(tuned_ratio, 2 * plain_ratio);
}

TEST(GraphPrep, PrepareGraphAlignsLatencies) {
  const Network net = test_network(200);
  MappingOptions opts = base_opts();
  std::vector<std::int64_t> lats;
  const Graph g =
      prepare_graph(net, MappingKind::kTop, nullptr, opts, &lats);
  ASSERT_EQ(static_cast<EdgeId>(lats.size()), g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(g.edge_weight(e),
              edge_weight_plain(lats[static_cast<std::size_t>(e)]));
  }
}

TEST(Profile, FoldChargesHostsToAttachRouter) {
  const Network net = test_network(50);
  std::vector<std::uint64_t> events(net.nodes.size(), 0);
  const NodeId host = net.num_routers;  // first host
  const NodeId attach =
      net.nodes[static_cast<std::size_t>(host)].attach_router;
  events[static_cast<std::size_t>(host)] = 10;
  events[static_cast<std::size_t>(attach)] = 5;
  const TrafficProfile p = fold_profile(net, events);
  EXPECT_EQ(p.router_events[static_cast<std::size_t>(attach)], 15u);
}

TEST(Profile, NaiveMappingContiguousAndComplete) {
  const Network net = test_network(100);
  const auto m = naive_mapping(net, 7);
  ASSERT_EQ(static_cast<NodeId>(m.size()), net.num_routers);
  std::set<LpId> used(m.begin(), m.end());
  EXPECT_EQ(used.size(), 7u);
  // Contiguous blocks: non-decreasing.
  EXPECT_TRUE(std::is_sorted(m.begin(), m.end()));
}

TEST(Score, EsEcComposition) {
  const std::vector<Weight> balanced{10, 10, 10};
  const PartitionScore s =
      score_partition(milliseconds(2), milliseconds(1), balanced);
  EXPECT_NEAR(s.es, 0.5, 1e-12);
  EXPECT_NEAR(s.ec, 1.0, 1e-12);
  EXPECT_NEAR(s.e, 0.5, 1e-12);
}

TEST(Score, NegativeEsClampsToZeroE) {
  const std::vector<Weight> loads{10, 10};
  const PartitionScore s =
      score_partition(microseconds(100), milliseconds(1), loads);
  EXPECT_LT(s.es, 0);
  EXPECT_DOUBLE_EQ(s.e, 0);
}

TEST(Score, ImbalanceLowersEc) {
  const std::vector<Weight> skewed{30, 10, 10};
  const PartitionScore s =
      score_partition(milliseconds(2), milliseconds(1), skewed);
  EXPECT_NEAR(s.ec, (50.0 / 3) / 30.0, 1e-9);
}

class MappingSweep : public ::testing::TestWithParam<MappingKind> {};

TEST_P(MappingSweep, ProducesValidMapping) {
  const MappingKind kind = GetParam();
  const Network net = test_network(300);
  MappingOptions opts = base_opts(6);
  opts.kind = kind;

  TrafficProfile profile;
  profile.router_events.assign(static_cast<std::size_t>(net.num_routers), 1);
  for (std::size_t i = 0; i < profile.router_events.size(); i += 3) {
    profile.router_events[i] = 100;  // synthetic hot spots
  }
  const TrafficProfile* p =
      mapping_uses_profile(kind) ? &profile : nullptr;
  const Mapping m = compute_mapping(net, opts, p);

  ASSERT_EQ(static_cast<NodeId>(m.router_lp.size()), net.num_routers);
  std::set<LpId> used(m.router_lp.begin(), m.router_lp.end());
  EXPECT_EQ(used.size(), 6u) << "some engine got no routers";
  for (LpId lp : m.router_lp) {
    EXPECT_GE(lp, 0);
    EXPECT_LT(lp, 6);
  }
  EXPECT_GT(m.achieved_mll, 0);
  EXPECT_EQ(m.kind, kind);

  // achieved_mll is really the min cross-partition latency.
  SimTime mll = kSimTimeMax;
  for (const NetLink& l : net.links) {
    if (!net.is_router(l.a) || !net.is_router(l.b)) continue;
    if (m.router_lp[static_cast<std::size_t>(l.a)] !=
        m.router_lp[static_cast<std::size_t>(l.b)]) {
      mll = std::min(mll, l.latency);
    }
  }
  EXPECT_EQ(m.achieved_mll, mll);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, MappingSweep,
                         ::testing::Values(MappingKind::kTop,
                                           MappingKind::kTop2,
                                           MappingKind::kProf,
                                           MappingKind::kProf2,
                                           MappingKind::kHTop,
                                           MappingKind::kHProf,
                                           MappingKind::kGreedy),
                         [](const auto& info) {
                           return mapping_kind_name(info.param);
                         });

TEST(GraphPrep, PlaceBoostsAttachmentRouters) {
  const Network net = test_network(100);
  const NodeId host = net.num_routers;
  const NodeId attach =
      net.nodes[static_cast<std::size_t>(host)].attach_router;
  const auto base = top_vertex_weights(net);
  const std::vector<NodeId> placement{host, host};  // duplicates allowed
  const auto w = place_vertex_weights(net, placement);
  // Two boosts of the 100 Mbps access link = +200.
  EXPECT_EQ(w[static_cast<std::size_t>(attach)],
            base[static_cast<std::size_t>(attach)] + 200 * 20);
  // Other routers untouched.
  for (NodeId r = 0; r < net.num_routers; ++r) {
    if (r != attach) {
      EXPECT_EQ(w[static_cast<std::size_t>(r)],
                base[static_cast<std::size_t>(r)]);
    }
  }
}

TEST(Mapping, PlaceProducesValidMapping) {
  const Network net = test_network(300);
  MappingOptions opts = base_opts(6);
  opts.kind = MappingKind::kPlace;
  std::vector<NodeId> placement;
  for (NodeId h = net.num_routers;
       h < static_cast<NodeId>(net.nodes.size()); h += 2) {
    placement.push_back(h);
  }
  const Mapping m = compute_mapping(net, opts, nullptr, placement);
  std::set<LpId> used(m.router_lp.begin(), m.router_lp.end());
  EXPECT_EQ(used.size(), 6u);
  EXPECT_STREQ(mapping_kind_name(m.kind), "PLACE");
}

TEST(Hierarchical, AchievedMllAtLeastTmll) {
  const Network net = test_network(500);
  MappingOptions opts = base_opts(8);
  opts.kind = MappingKind::kHTop;
  const Mapping m = compute_mapping(net, opts, nullptr);
  EXPECT_GT(m.tmll, 0);
  EXPECT_GE(m.achieved_mll, m.tmll)
      << "contraction must guarantee the worst-case MLL";
  // And the threshold itself exceeds the synchronization cost.
  EXPECT_GT(m.tmll, opts.cluster.sync_cost_time(8));
}

TEST(Hierarchical, BeatsFlatOnEfficiencyScore) {
  const Network net = test_network(500);
  MappingOptions opts = base_opts(8);

  opts.kind = MappingKind::kTop;
  const Mapping flat = compute_mapping(net, opts, nullptr);
  opts.kind = MappingKind::kHTop;
  const Mapping hier = compute_mapping(net, opts, nullptr);

  const SimTime sync = opts.cluster.sync_cost_time(8);
  // Es of the hierarchical mapping must be positive by construction; the
  // flat mapping typically cuts a short link.
  EXPECT_GT(hier.achieved_mll, sync);
  EXPECT_GE(hier.predicted_efficiency, flat.predicted_efficiency);
}

TEST(Hierarchical, SweepExploresThresholds) {
  const Network net = test_network(500);
  std::vector<std::int64_t> lats;
  MappingOptions opts = base_opts(8);
  Graph g = prepare_graph(net, MappingKind::kTop, nullptr, opts, &lats);
  const auto r = hierarchical_partition(g, lats, opts);
  ASSERT_TRUE(r.has_value());
  EXPECT_GT(r->candidates_tried, 1);
  EXPECT_GT(r->score.e, 0);
}

TEST(Hierarchical, FallsBackWhenTooFewClusters) {
  // A 4-vertex graph cannot produce 8 clusters above any threshold once
  // contraction merges everything; expect nullopt and flat fallback in
  // compute_mapping.
  GraphBuilder b(4);
  b.add_edge(0, 1, 1);
  b.add_edge(1, 2, 1);
  b.add_edge(2, 3, 1);
  Graph g = b.build();
  const std::vector<std::int64_t> lats{microseconds(20), microseconds(20),
                                       microseconds(20)};
  MappingOptions opts = base_opts(8);
  const auto r = hierarchical_partition(g, lats, opts);
  EXPECT_FALSE(r.has_value());
}

TEST(Mapping, DeterministicForSeed) {
  const Network net = test_network(300);
  MappingOptions opts = base_opts(5);
  opts.kind = MappingKind::kHTop;
  const Mapping a = compute_mapping(net, opts, nullptr);
  const Mapping b = compute_mapping(net, opts, nullptr);
  EXPECT_EQ(a.router_lp, b.router_lp);
  EXPECT_EQ(a.tmll, b.tmll);
}

TEST(Mapping, SingleEngine) {
  const Network net = test_network(100);
  MappingOptions opts = base_opts(1);
  opts.kind = MappingKind::kTop;
  const Mapping m = compute_mapping(net, opts, nullptr);
  for (LpId lp : m.router_lp) EXPECT_EQ(lp, 0);
  EXPECT_EQ(m.edge_cut, 0);
}

/// A hand-built line network: `routers` routers chained with 1 ms links,
/// one host on router 0 (validate() requires every host attached).
Network tiny_line_network(std::int32_t routers) {
  Network net;
  net.num_routers = routers;
  net.nodes.assign(static_cast<std::size_t>(routers), NetNode{});
  for (std::int32_t r = 0; r + 1 < routers; ++r) {
    NetLink l;
    l.a = r;
    l.b = r + 1;
    l.latency = milliseconds(1);
    l.bandwidth_bps = 1e9;
    net.links.push_back(l);
  }
  NetNode host;
  host.kind = NodeKind::kHost;
  host.attach_router = 0;
  net.nodes.push_back(host);
  NetLink access;
  access.a = static_cast<NodeId>(net.nodes.size()) - 1;
  access.b = 0;
  access.latency = microseconds(10);
  access.bandwidth_bps = 1e9;
  net.links.push_back(access);
  net.build_adjacency();
  EXPECT_EQ(net.validate(), "");
  return net;
}

// ---- hierarchical Tmll sweep edge cases -----------------------------------

TEST(Hierarchical, MoreEnginesThanVertices) {
  // 4 routers cannot fill 8 engines: the sweep must not crash or emit
  // out-of-range LPs; every engine id stays in [0, num_engines) and every
  // router is assigned somewhere.
  const Network net = tiny_line_network(4);
  MappingOptions opts = base_opts(8);
  opts.kind = MappingKind::kHTop;
  const Mapping m = compute_mapping(net, opts, nullptr);
  ASSERT_EQ(static_cast<NodeId>(m.router_lp.size()), net.num_routers);
  for (LpId lp : m.router_lp) {
    EXPECT_GE(lp, 0);
    EXPECT_LT(lp, opts.num_engines);
  }
}

TEST(Hierarchical, ZeroTrafficProfile) {
  // A PROF profile from a run that processed nothing: every router weight
  // floors at +1, so HPROF must still produce a balanced, valid mapping
  // rather than dividing by a zero total weight.
  const Network net = test_network(200);
  TrafficProfile profile;
  profile.router_events.assign(static_cast<std::size_t>(net.num_routers), 0);
  MappingOptions opts = base_opts(4);
  opts.kind = MappingKind::kHProf;
  const Mapping m = compute_mapping(net, opts, &profile);
  ASSERT_EQ(static_cast<NodeId>(m.router_lp.size()), net.num_routers);
  std::set<LpId> used(m.router_lp.begin(), m.router_lp.end());
  EXPECT_GT(used.size(), 1u) << "all-equal weights must still spread load";
  for (LpId lp : m.router_lp) {
    EXPECT_GE(lp, 0);
    EXPECT_LT(lp, opts.num_engines);
  }
}

TEST(Hierarchical, StepLargerThanMax) {
  // tmll_step > tmll_max leaves the sweep zero candidate thresholds; the
  // mapping must fall back (flat refinement) instead of crashing or
  // returning an empty assignment.
  const Network net = test_network(300);
  MappingOptions opts = base_opts(8);
  opts.kind = MappingKind::kHTop;
  opts.tmll_step = milliseconds(50);
  opts.tmll_max = milliseconds(20);
  const Mapping m = compute_mapping(net, opts, nullptr);
  ASSERT_EQ(static_cast<NodeId>(m.router_lp.size()), net.num_routers);
  for (LpId lp : m.router_lp) {
    EXPECT_GE(lp, 0);
    EXPECT_LT(lp, opts.num_engines);
  }
}

}  // namespace
}  // namespace massf
