// Checkpoint/restore: format unit tests plus the restore-equality property
// the subsystem exists for.
//
// The property under test (DESIGN.md section 5e): a run checkpointed at a
// synchronization-window boundary and restored into a freshly constructed
// engine must produce the *same full result signature* as the uninterrupted
// run — per-LP counts and checksums, RunStats bit for bit (including the
// modeled-time doubles), hook-side state, and the window probe's
// deterministic per-window columns — under the sequential executor and
// every thread count. The fuzz section checks it by generation over the
// pdes_fuzz workload family (checkpoint window and executor varied per
// seed); the golden section pins it on the exact BENCH_pdes.json workload
// whose trace checksum (807988445054369792) has been stable since the seed
// engine.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "ckpt/ckpt.hpp"
#include "obs/probe.hpp"
#include "pdes/engine.hpp"

namespace massf {
namespace {

constexpr int kNumFuzzSeeds = 24;

// ---- format unit tests ------------------------------------------------------

TEST(CkptFormat, WriterReaderRoundTrip) {
  ckpt::Writer w;
  w.u8(0xab);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i32(-42);
  w.i64(-1234567890123LL);
  w.f64(3.14159);
  w.f64(-0.0);
  w.str("hello");
  ckpt::write_f64_vec(w, {1.5, -2.5});
  ckpt::write_char_vec(w, {1, 0, 1});
  std::vector<std::uint64_t> u64s = {7, 8, 9};
  ckpt::write_u64_vec(w, u64s);

  ckpt::Reader r(w.buffer().data(), w.size());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.i64(), -1234567890123LL);
  EXPECT_EQ(r.f64(), 3.14159);
  EXPECT_TRUE(std::signbit(r.f64()));  // -0.0 survives (bit-cast encoding)
  EXPECT_EQ(r.str(), "hello");
  std::vector<double> f64s;
  EXPECT_TRUE(ckpt::read_f64_vec(r, f64s));
  EXPECT_EQ(f64s, (std::vector<double>{1.5, -2.5}));
  std::vector<char> chars;
  EXPECT_TRUE(ckpt::read_char_vec(r, chars));
  EXPECT_EQ(chars, (std::vector<char>{1, 0, 1}));
  std::vector<std::uint64_t> back;
  EXPECT_TRUE(ckpt::read_u64_vec(r, back));
  EXPECT_EQ(back, u64s);
  EXPECT_TRUE(r.done());
}

TEST(CkptFormat, ReaderLatchesOnOverrun) {
  const std::uint8_t bytes[2] = {1, 2};
  ckpt::Reader r(bytes, 2);
  EXPECT_EQ(r.u64(), 0u);  // needs 8, has 2: latched, zero value
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.u8(), 0u);  // stays latched even though 1 byte would fit
  EXPECT_FALSE(r.done());
}

TEST(CkptFormat, ContainerRoundTrip) {
  ckpt::Checkpoint ck;
  ck.add_section("alpha").u64(11);
  ckpt::Writer& beta = ck.add_section("beta");
  beta.str("payload");
  beta.i32(-5);

  const std::vector<std::uint8_t> image = ck.serialize();
  std::string error;
  const auto parsed = ckpt::Checkpoint::parse(image.data(), image.size(),
                                              &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->section_names(),
            (std::vector<std::string>{"alpha", "beta"}));
  auto a = parsed->section("alpha");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->u64(), 11u);
  EXPECT_TRUE(a->done());
  auto b = parsed->section("beta");
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->str(), "payload");
  EXPECT_EQ(b->i32(), -5);
  EXPECT_TRUE(b->done());
  EXPECT_FALSE(parsed->section("gamma").has_value());
}

TEST(CkptFormat, ParseRejectsCorruptionAndTruncation) {
  ckpt::Checkpoint ck;
  ck.add_section("state").u64(1234);
  std::vector<std::uint8_t> image = ck.serialize();

  // Every truncation length is rejected (header or payload cut short).
  for (std::size_t len = 0; len < image.size(); ++len) {
    EXPECT_FALSE(ckpt::Checkpoint::parse(image.data(), len).has_value())
        << "accepted truncation to " << len << " bytes";
  }
  // A single flipped payload byte fails the checksum.
  std::vector<std::uint8_t> corrupt = image;
  corrupt.back() ^= 0x01;
  std::string error;
  EXPECT_FALSE(
      ckpt::Checkpoint::parse(corrupt.data(), corrupt.size(), &error)
          .has_value());
  EXPECT_NE(error.find("checksum"), std::string::npos) << error;
  // Bad magic.
  corrupt = image;
  corrupt[0] = 'X';
  EXPECT_FALSE(
      ckpt::Checkpoint::parse(corrupt.data(), corrupt.size()).has_value());
  // Unsupported version (byte 8 is the low version byte).
  corrupt = image;
  corrupt[8] = 0x7f;
  EXPECT_FALSE(
      ckpt::Checkpoint::parse(corrupt.data(), corrupt.size(), &error)
          .has_value());
  EXPECT_NE(error.find("version"), std::string::npos) << error;
}

TEST(CkptFormat, ParticipantsRestoreFailures) {
  int value = 7;
  ckpt::Participants parts;
  parts.add(
      "value",
      [&value](ckpt::Writer& w) { w.i32(value); },
      [&value](ckpt::Reader& r) {
        value = r.i32();
        return true;
      });

  // Happy-path image captured while value == 7 (failed restores below may
  // legitimately mutate `value` before their postcondition check trips —
  // callers treat a failed restore as fatal, not as a rollback).
  ckpt::Checkpoint good;
  parts.save(good);

  // Missing section.
  ckpt::Checkpoint empty;
  std::string error;
  EXPECT_FALSE(parts.restore(empty, &error));
  EXPECT_NE(error.find("value"), std::string::npos) << error;

  // Section present but with trailing bytes: done() check trips.
  ckpt::Checkpoint trailing;
  ckpt::Writer& w = trailing.add_section("value");
  w.i32(9);
  w.u8(0xff);
  EXPECT_FALSE(parts.restore(trailing, &error));
  EXPECT_NE(error.find("value"), std::string::npos) << error;

  // Semantic rejection propagates.
  ckpt::Participants strict;
  strict.add(
      "value", [](ckpt::Writer& sw) { sw.i32(0); },
      [](ckpt::Reader& r) {
        r.i32();
        return false;
      });
  ckpt::Checkpoint ok;
  ok.add_section("value").i32(1);
  EXPECT_FALSE(strict.restore(ok, &error));
  EXPECT_NE(error.find("rejected"), std::string::npos) << error;

  // And the happy path.
  value = -1;
  EXPECT_TRUE(parts.restore(good, &error)) << error;
  EXPECT_EQ(value, 7);
}

// ---- fuzzed restore equality ------------------------------------------------

// splitmix64 (matches pdes_fuzz_test.cpp).
std::uint64_t mix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

struct FuzzScenario {
  std::int32_t lps;
  SimTime lookahead;
  SimTime end_time;
  std::int32_t initial_events;
  std::uint64_t fanout_budget;
  bool hook_injects;
  std::uint64_t ckpt_window;     // hook fires every this many windows
  std::int32_t ckpt_threads;     // executor taking the checkpoint
};

FuzzScenario make_scenario(std::uint64_t seed) {
  std::uint64_t s = seed * 0x9e3779b97f4a7c15ULL + 1;
  FuzzScenario sc;
  sc.lps = static_cast<std::int32_t>(1 + mix64(s) % 9);
  sc.lookahead = microseconds(200 + 200 * static_cast<std::int64_t>(
                                               mix64(s) % 9));  // 0.2–1.8ms
  sc.end_time = milliseconds(20 + static_cast<std::int64_t>(mix64(s) % 60));
  sc.initial_events = static_cast<std::int32_t>(1 + mix64(s) % 6);
  sc.fanout_budget = 40 + mix64(s) % 160;
  sc.hook_injects = mix64(s) % 3 != 0;
  sc.ckpt_window = 2 + mix64(s) % 12;  // early enough to fire on every seed
  sc.ckpt_threads = static_cast<std::int32_t>(mix64(s) % 3) * 2;  // 0, 2, 4
  return sc;
}

// Deterministic function of its own event stream; its mutable state (rng
// position, count, checksum) round-trips through the LogicalProcess
// save/load hooks.
class FuzzLp final : public LogicalProcess {
 public:
  FuzzLp(std::uint64_t seed, LpId self, std::int32_t num_lps)
      : rng_(seed ^ (0xabcdef12345678ULL + static_cast<std::uint64_t>(self))),
        self_(self),
        num_lps_(num_lps) {}

  void handle(Engine& engine, const Event& ev) override {
    ++count;
    checksum = checksum * 1099511628211ULL +
               (static_cast<std::uint64_t>(ev.time) ^
                (static_cast<std::uint64_t>(ev.type) << 48) ^ ev.a);
    const std::uint64_t r = mix64(rng_);
    if (ev.a == 0) return;
    const SimTime la = engine.options().lookahead;
    switch (r % 5) {
      case 0:
      case 1: {
        const SimTime d = 1 + static_cast<SimTime>(r >> 8) % la;
        engine.schedule(self_, ev.time + d, 1, ev.a - 1);
        break;
      }
      case 2: {
        const LpId dst = static_cast<LpId>(
            (r >> 16) % static_cast<std::uint64_t>(num_lps_));
        const SimTime jitter = static_cast<SimTime>((r >> 40) % 1000);
        engine.schedule(dst, ev.time + la + jitter, 2, ev.a - 1);
        break;
      }
      case 3: {
        engine.schedule(self_, ev.time + 1 + static_cast<SimTime>(r % 500), 3,
                        ev.a / 2);
        const LpId dst = static_cast<LpId>(
            (r >> 16) % static_cast<std::uint64_t>(num_lps_));
        engine.schedule(dst, ev.time + la, 4, ev.a - 1);
        break;
      }
      default:
        break;  // absorb
    }
  }

  void save(ckpt::Writer& w) const override {
    w.u64(rng_);
    w.u64(count);
    w.u64(checksum);
  }
  bool load(ckpt::Reader& r) override {
    rng_ = r.u64();
    count = r.u64();
    checksum = r.u64();
    return r.ok();
  }

  std::uint64_t count = 0;
  std::uint64_t checksum = 0;

 private:
  std::uint64_t rng_;
  LpId self_;
  std::int32_t num_lps_;
};

std::uint64_t double_bits(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

// One fully constructed fuzz stack: engine, LPs, the stateful barrier hook,
// and the probe — everything the checkpoint must capture.
struct FuzzStack {
  explicit FuzzStack(std::uint64_t seed) : sc(make_scenario(seed)) {
    EngineOptions o;
    o.lookahead = sc.lookahead;
    o.end_time = sc.end_time;
    o.cost_per_event_s = 1e-6;
    o.sync_cost_s = 1e-5;
    engine = std::make_unique<Engine>(o);
    for (std::int32_t i = 0; i < sc.lps; ++i) {
      auto lp = std::make_unique<FuzzLp>(seed, i, sc.lps);
      lps.push_back(lp.get());
      engine->add_lp(std::move(lp));
    }
    std::uint64_t init_rng = seed ^ 0x5151515151515151ULL;
    for (std::int32_t i = 0; i < sc.initial_events; ++i) {
      const std::uint64_t r = mix64(init_rng);
      engine->schedule(
          static_cast<LpId>(r % static_cast<std::uint64_t>(sc.lps)),
          static_cast<SimTime>(r >> 32) % milliseconds(5), 1,
          sc.fanout_budget);
    }
    hook_rng = seed ^ 0xf00dULL;
    engine->hooks().barrier.push_back([this](Engine& eng, SimTime floor) {
      ++windows_seen;
      if (sc.hook_injects && mix64(hook_rng) % 7 == 0) {
        const std::uint64_t r = mix64(hook_rng);
        eng.schedule(
            static_cast<LpId>(r % static_cast<std::uint64_t>(sc.lps)),
            floor + eng.options().lookahead + static_cast<SimTime>(r % 1000),
            5, 3);
      }
    });
    engine->set_probe(&probe);
  }

  // The driver-side inventory: engine (with LP state), the barrier hook's
  // rng/counter, and the probe. Any entry left out here would surface as a
  // signature mismatch below.
  ckpt::Participants participants() {
    ckpt::Participants parts;
    Engine* eng = engine.get();
    parts.add(
        "engine", [eng](ckpt::Writer& w) { eng->save_state(w); },
        [eng](ckpt::Reader& r) { return eng->restore_state(r); });
    parts.add(
        "hook",
        [this](ckpt::Writer& w) {
          w.u64(hook_rng);
          w.u64(windows_seen);
        },
        [this](ckpt::Reader& r) {
          hook_rng = r.u64();
          windows_seen = r.u64();
          return r.ok();
        });
    parts.add(
        "probe", [this](ckpt::Writer& w) { probe.save(w); },
        [this](ckpt::Reader& r) { return probe.load(r); });
    return parts;
  }

  std::vector<std::uint64_t> signature(const RunStats& stats) const {
    std::vector<std::uint64_t> sig;
    for (const FuzzLp* lp : lps) {
      sig.push_back(lp->count);
      sig.push_back(lp->checksum);
    }
    sig.push_back(stats.total_events);
    sig.push_back(stats.num_windows);
    sig.push_back(static_cast<std::uint64_t>(stats.end_vtime));
    sig.push_back(stats.cross_lp_events);
    sig.push_back(stats.merge_batches);
    sig.push_back(double_bits(stats.modeled_wall_s));
    sig.push_back(double_bits(stats.modeled_sync_s));
    for (const std::uint64_t e : stats.events_per_lp) sig.push_back(e);
    for (const double b : stats.busy_s) sig.push_back(double_bits(b));
    sig.push_back(windows_seen);
    const obs::WindowProbe::Summary s = probe.summary();
    sig.push_back(s.windows);
    sig.push_back(s.events);
    sig.push_back(s.max_queue_depth);
    sig.push_back(s.outbox_events);
    sig.push_back(s.outbox_batches);
    // Deterministic per-window columns only (phase timings are wall clock).
    for (const obs::WindowProbe::Window& w : probe.windows()) {
      sig.push_back(w.events);
      sig.push_back(w.max_lp_events);
      sig.push_back(w.queue_depth);
      sig.push_back(w.outbox);
      sig.push_back(w.outbox_batches);
    }
    return sig;
  }

  RunStats run(std::int32_t threads) {
    return threads > 0 ? engine->run_threaded(threads) : engine->run();
  }

  FuzzScenario sc;
  std::unique_ptr<Engine> engine;
  std::vector<FuzzLp*> lps;
  std::uint64_t hook_rng = 0;
  std::uint64_t windows_seen = 0;
  obs::WindowProbe probe;
};

class CkptFuzz : public ::testing::TestWithParam<int> {};

TEST_P(CkptFuzz, RestoredRunMatchesUninterrupted) {
  const auto seed = static_cast<std::uint64_t>(GetParam());

  // Reference: the uninterrupted sequential run.
  FuzzStack ref(seed);
  const RunStats ref_stats = ref.run(0);
  const std::vector<std::uint64_t> want = ref.signature(ref_stats);
  if (ref_stats.num_windows < 2) {
    GTEST_SKIP() << "seed=" << seed << ": run too short to interrupt ("
                 << ref_stats.num_windows << " windows)";
  }

  // Interrupted run: checkpoint (in memory) at a seed-chosen window that
  // the run is guaranteed to reach (the hook only fires at the top of the
  // loop iteration *after* the target window completes, so the target must
  // be at most num_windows - 1), then stop — under a seed-chosen executor.
  const std::uint64_t ckpt_window = 1 + seed % (ref_stats.num_windows - 1);
  FuzzStack cut(seed);
  ckpt::Participants cut_parts = cut.participants();
  std::vector<std::uint8_t> image;
  cut.engine->set_ckpt_hook(
      ckpt_window, [&cut_parts, &image](Engine& eng, SimTime) {
        if (!image.empty()) return;  // keep the first snapshot only
        ckpt::Checkpoint ck;
        cut_parts.save(ck);
        image = ck.serialize();
        eng.request_stop();
      });
  cut.run(cut.sc.ckpt_threads);
  ASSERT_FALSE(image.empty())
      << "seed=" << seed << ": run ended before window " << ckpt_window;

  std::string error;
  const auto parsed = ckpt::Checkpoint::parse(image.data(), image.size(),
                                              &error);
  ASSERT_TRUE(parsed.has_value()) << error;

  // Resume into a fresh stack under each executor; full-signature equality.
  for (const std::int32_t threads : {0, 1, 2, 4}) {
    FuzzStack resumed(seed);
    ASSERT_TRUE(resumed.participants().restore(*parsed, &error))
        << "seed=" << seed << " threads=" << threads << ": " << error;
    EXPECT_EQ(want, resumed.signature(resumed.run(threads)))
        << "seed=" << seed << " threads=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CkptFuzz,
                         ::testing::Range(0, kNumFuzzSeeds));

// ---- golden restore ---------------------------------------------------------

// Mirrors RingLp in bench/bench_pdes.cpp (the BENCH_pdes.json workload).
constexpr std::uint64_t kGoldenChecksum = 807988445054369792ULL;
constexpr std::uint64_t kGoldenEvents = 4162080ULL;
constexpr std::uint64_t kGoldenWindows = 2001ULL;
constexpr std::int32_t kEvHop = 1;
constexpr std::int32_t kEvLocal = 2;

class RingLp final : public LogicalProcess {
 public:
  RingLp(LpId next, std::int64_t chain) : next_(next), chain_(chain) {}

  void handle(Engine& engine, const Event& ev) override {
    checksum = checksum * 1099511628211ULL +
               static_cast<std::uint64_t>(ev.time);
    if (ev.type == kEvHop) {
      if (ev.a > 0) {
        engine.schedule(next_, ev.time + engine.options().lookahead, kEvHop,
                        ev.a - 1);
      }
      if (chain_ > 0) {
        engine.schedule(engine.current_lp(), ev.time + microseconds(1),
                        kEvLocal, static_cast<std::uint64_t>(chain_ - 1));
      }
    } else if (ev.a > 0) {
      engine.schedule(engine.current_lp(), ev.time + microseconds(1), kEvLocal,
                      ev.a - 1);
    }
  }

  void save(ckpt::Writer& w) const override { w.u64(checksum); }
  bool load(ckpt::Reader& r) override {
    checksum = r.u64();
    return r.ok();
  }

  std::uint64_t checksum = 0;

 private:
  LpId next_;
  std::int64_t chain_;
};

struct GoldenStack {
  GoldenStack() {
    constexpr std::int64_t kLps = 32;
    constexpr std::int64_t kChain = 64;
    constexpr std::uint64_t kHops = 2000;
    EngineOptions o;
    o.lookahead = milliseconds(1);
    o.end_time = seconds(3600);
    engine = std::make_unique<Engine>(o);
    for (std::int64_t i = 0; i < kLps; ++i) {
      auto lp =
          std::make_unique<RingLp>(static_cast<LpId>((i + 1) % kLps), kChain);
      lps.push_back(lp.get());
      engine->add_lp(std::move(lp));
    }
    for (std::int64_t i = 0; i < kLps; ++i) {
      engine->schedule(static_cast<LpId>(i), 0, kEvHop, kHops);
    }
  }

  ckpt::Participants participants() {
    ckpt::Participants parts;
    Engine* eng = engine.get();
    parts.add(
        "engine", [eng](ckpt::Writer& w) { eng->save_state(w); },
        [eng](ckpt::Reader& r) { return eng->restore_state(r); });
    return parts;
  }

  std::uint64_t checksum() const {
    std::uint64_t c = 0;
    for (const RingLp* lp : lps) c = c * 31 + lp->checksum;
    return c;
  }

  std::unique_ptr<Engine> engine;
  std::vector<RingLp*> lps;
};

class CkptGolden : public ::testing::TestWithParam<int> {};

// Checkpoint the pinned bench workload halfway (window 1000 of 2001),
// resume, and require the exact golden trace checksum — the same value
// BENCH_pdes.json and pdes_golden_test.cpp pin for uninterrupted runs.
TEST_P(CkptGolden, RestoreAtHalfwayReproducesPinnedChecksum) {
  const std::int32_t threads = GetParam();

  GoldenStack cut;
  ckpt::Participants cut_parts = cut.participants();
  std::vector<std::uint8_t> image;
  cut.engine->set_ckpt_hook(1000,
                            [&cut_parts, &image](Engine& eng, SimTime) {
                              if (!image.empty()) return;
                              ckpt::Checkpoint ck;
                              cut_parts.save(ck);
                              image = ck.serialize();
                              eng.request_stop();
                            });
  const RunStats cut_stats = threads > 0
                                 ? cut.engine->run_threaded(threads)
                                 : cut.engine->run();
  ASSERT_FALSE(image.empty());
  EXPECT_EQ(cut_stats.num_windows, 1000u);

  std::string error;
  const auto parsed = ckpt::Checkpoint::parse(image.data(), image.size(),
                                              &error);
  ASSERT_TRUE(parsed.has_value()) << error;

  GoldenStack resumed;
  ASSERT_TRUE(resumed.participants().restore(*parsed, &error)) << error;
  const RunStats stats = threads > 0
                             ? resumed.engine->run_threaded(threads)
                             : resumed.engine->run();
  EXPECT_EQ(resumed.checksum(), kGoldenChecksum);
  EXPECT_EQ(stats.total_events, kGoldenEvents);
  EXPECT_EQ(stats.num_windows, kGoldenWindows);
}

INSTANTIATE_TEST_SUITE_P(Threads, CkptGolden, ::testing::Values(0, 2, 4));

}  // namespace
}  // namespace massf
