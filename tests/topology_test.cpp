#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/algorithms.hpp"
#include "topology/brite.hpp"
#include "topology/mabrite.hpp"

namespace massf {
namespace {

BriteOptions small_flat() {
  BriteOptions o;
  o.num_routers = 300;
  o.num_hosts = 100;
  o.seed = 5;
  return o;
}

MaBriteOptions small_multi() {
  MaBriteOptions o;
  o.num_as = 12;
  o.routers_per_as = 25;
  o.num_hosts = 120;
  o.seed = 5;
  return o;
}

TEST(LatencyModel, DistanceAndFloor) {
  EXPECT_EQ(latency_for_distance(0), microseconds(10));
  // 1243 miles at ~124274 mi/s = ~10 ms.
  const SimTime t = latency_for_distance(1242.74);
  EXPECT_NEAR(to_milliseconds(t), 10.0, 0.1);
  EXPECT_GT(latency_for_distance(2000), latency_for_distance(1000));
}

TEST(Distance, Euclidean) {
  EXPECT_DOUBLE_EQ(distance_miles(0, 0, 3, 4), 5.0);
}

TEST(BriteFlat, CountsAndValidity) {
  const Network net = generate_flat(small_flat());
  EXPECT_EQ(net.num_routers, 300);
  EXPECT_EQ(net.num_hosts(), 100);
  EXPECT_EQ(net.validate(), "");
  EXPECT_EQ(net.num_as(), 1);
}

TEST(BriteFlat, RouterGraphConnected) {
  const Network net = generate_flat(small_flat());
  EXPECT_TRUE(is_connected(net.router_graph()));
}

TEST(BriteFlat, HostsAttachedByOneLink) {
  const Network net = generate_flat(small_flat());
  for (NodeId h = net.num_routers; h < static_cast<NodeId>(net.nodes.size());
       ++h) {
    EXPECT_EQ(net.incident(h).size(), 1u);
    const NodeId r = net.nodes[static_cast<std::size_t>(h)].attach_router;
    EXPECT_TRUE(net.is_router(r));
  }
}

TEST(BriteFlat, Deterministic) {
  const Network a = generate_flat(small_flat());
  const Network b = generate_flat(small_flat());
  ASSERT_EQ(a.links.size(), b.links.size());
  for (std::size_t i = 0; i < a.links.size(); ++i) {
    EXPECT_EQ(a.links[i].a, b.links[i].a);
    EXPECT_EQ(a.links[i].b, b.links[i].b);
    EXPECT_EQ(a.links[i].latency, b.links[i].latency);
  }
}

TEST(BriteFlat, HeavyTailedDegrees) {
  BriteOptions o = small_flat();
  o.num_routers = 2000;
  const Network net = generate_flat(o);
  const Graph g = net.router_graph();
  const auto hist = degree_histogram(g);
  // A power-law graph has hubs: max degree far above the mean (~2m = 4).
  EXPECT_GT(hist.size(), 20u);
  EXPECT_LT(power_law_exponent(g, 2), -1.0);
}

TEST(BriteFlat, LocalityShortensLinks) {
  BriteOptions local = small_flat();
  local.num_routers = 1000;
  local.locality_miles = 100;
  BriteOptions nonlocal = local;
  nonlocal.locality_miles = 0;

  const auto mean_latency = [](const Network& net) {
    double sum = 0;
    int n = 0;
    for (const NetLink& l : net.links) {
      if (net.is_router(l.a) && net.is_router(l.b)) {
        sum += to_seconds(l.latency);
        ++n;
      }
    }
    return sum / n;
  };
  EXPECT_LT(mean_latency(generate_flat(local)),
            0.6 * mean_latency(generate_flat(nonlocal)));
}

TEST(BriteFlat, MinLinkLatencyRespectsFloor) {
  const Network net = generate_flat(small_flat());
  EXPECT_GE(net.min_link_latency(), microseconds(10));
}

TEST(BriteFlat, RouterGraphLatenciesAligned) {
  const Network net = generate_flat(small_flat());
  std::vector<std::int64_t> lat;
  std::vector<LinkId> links;
  const Graph g = net.router_graph(&lat, &links);
  ASSERT_EQ(static_cast<EdgeId>(lat.size()), g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const NetLink& l = net.links[static_cast<std::size_t>(
        links[static_cast<std::size_t>(e)])];
    EXPECT_EQ(lat[static_cast<std::size_t>(e)], l.latency);
    const auto u = g.edge_u(e), v = g.edge_v(e);
    EXPECT_TRUE((l.a == u && l.b == v) || (l.a == v && l.b == u));
  }
}

TEST(Waxman, ConnectedAndValid) {
  BriteOptions o = small_flat();
  o.model = TopologyModel::kWaxman;
  o.num_routers = 400;
  const Network net = generate_flat(o);
  EXPECT_EQ(net.validate(), "");
  EXPECT_TRUE(is_connected(net.router_graph()));
}

TEST(Waxman, NoHeavyTail) {
  // Waxman degrees concentrate; the max degree stays far below a BA hub's.
  BriteOptions o = small_flat();
  o.num_routers = 1000;
  o.model = TopologyModel::kWaxman;
  const Network waxman = generate_flat(o);
  o.model = TopologyModel::kBarabasiAlbert;
  const Network ba = generate_flat(o);
  const auto max_degree = [](const Network& net) {
    std::size_t best = 0;
    for (NodeId r = 0; r < net.num_routers; ++r) {
      best = std::max(best, net.incident(r).size());
    }
    return best;
  };
  EXPECT_LT(max_degree(waxman), max_degree(ba));
}

TEST(Waxman, ShortLinksPreferred) {
  BriteOptions o = small_flat();
  o.model = TopologyModel::kWaxman;
  o.num_routers = 500;
  const Network net = generate_flat(o);
  // Mean router-link span must be well under the plane diagonal.
  double sum = 0;
  int n = 0;
  for (const NetLink& l : net.links) {
    if (!net.is_router(l.a) || !net.is_router(l.b)) continue;
    sum += distance_miles(net.nodes[static_cast<std::size_t>(l.a)].x,
                          net.nodes[static_cast<std::size_t>(l.a)].y,
                          net.nodes[static_cast<std::size_t>(l.b)].x,
                          net.nodes[static_cast<std::size_t>(l.b)].y);
    ++n;
  }
  EXPECT_LT(sum / n, o.plane_miles * 0.4);
}

TEST(MaBrite, ValidNetwork) {
  const Network net = generate_multi_as(small_multi());
  EXPECT_EQ(net.validate(), "");
  EXPECT_EQ(net.num_as(), 12);
  EXPECT_EQ(net.num_routers, 12 * 25);
  EXPECT_EQ(net.num_hosts(), 120);
}

TEST(MaBrite, WholeRouterGraphConnected) {
  const Network net = generate_multi_as(small_multi());
  EXPECT_TRUE(is_connected(net.router_graph()));
}

TEST(MaBrite, CoreCliqueExists) {
  const Network net = generate_multi_as(small_multi());
  std::vector<AsId> cores;
  for (AsId a = 0; a < net.num_as(); ++a) {
    if (net.as_info[static_cast<std::size_t>(a)].cls == AsClass::kCore) {
      cores.push_back(a);
    }
  }
  EXPECT_GE(cores.size(), 3u);
  std::set<std::pair<AsId, AsId>> adj;
  for (const AsAdjacency& e : net.as_adjacency) {
    adj.insert({std::min(e.as_a, e.as_b), std::max(e.as_a, e.as_b)});
  }
  for (std::size_t i = 0; i < cores.size(); ++i) {
    for (std::size_t j = i + 1; j < cores.size(); ++j) {
      EXPECT_TRUE(adj.count({std::min(cores[i], cores[j]),
                             std::max(cores[i], cores[j])}))
          << "cores " << cores[i] << " and " << cores[j] << " not adjacent";
    }
  }
}

TEST(MaBrite, CorePairsArePeers) {
  const Network net = generate_multi_as(small_multi());
  for (const AsAdjacency& e : net.as_adjacency) {
    const AsClass ca = net.as_info[static_cast<std::size_t>(e.as_a)].cls;
    const AsClass cb = net.as_info[static_cast<std::size_t>(e.as_b)].cls;
    if (ca == cb) {
      EXPECT_EQ(e.rel_ab, AsRel::kPeer);
    } else {
      EXPECT_NE(e.rel_ab, AsRel::kPeer);
    }
  }
}

TEST(MaBrite, ProviderIsHigherClass) {
  const Network net = generate_multi_as(small_multi());
  const auto rank = [](AsClass c) {
    return c == AsClass::kCore ? 2 : (c == AsClass::kRegional ? 1 : 0);
  };
  for (const AsAdjacency& e : net.as_adjacency) {
    const int ra = rank(net.as_info[static_cast<std::size_t>(e.as_a)].cls);
    const int rb = rank(net.as_info[static_cast<std::size_t>(e.as_b)].cls);
    if (e.rel_ab == AsRel::kCustomer) EXPECT_GT(ra, rb);
    if (e.rel_ab == AsRel::kProvider) EXPECT_LT(ra, rb);
  }
}

TEST(MaBrite, EveryNonCoreReachesCoreViaProviders) {
  const Network net = generate_multi_as(small_multi());
  std::vector<std::vector<AsId>> providers(
      static_cast<std::size_t>(net.num_as()));
  for (const AsAdjacency& e : net.as_adjacency) {
    if (e.rel_ab == AsRel::kProvider) {
      providers[static_cast<std::size_t>(e.as_a)].push_back(e.as_b);
    } else if (e.rel_ab == AsRel::kCustomer) {
      providers[static_cast<std::size_t>(e.as_b)].push_back(e.as_a);
    }
  }
  for (AsId a = 0; a < net.num_as(); ++a) {
    if (net.as_info[static_cast<std::size_t>(a)].cls == AsClass::kCore) {
      continue;
    }
    std::vector<char> seen(static_cast<std::size_t>(net.num_as()), 0);
    std::vector<AsId> stack{a};
    seen[static_cast<std::size_t>(a)] = 1;
    bool ok = false;
    while (!stack.empty() && !ok) {
      const AsId v = stack.back();
      stack.pop_back();
      for (AsId p : providers[static_cast<std::size_t>(v)]) {
        if (net.as_info[static_cast<std::size_t>(p)].cls == AsClass::kCore) {
          ok = true;
          break;
        }
        if (!seen[static_cast<std::size_t>(p)]) {
          seen[static_cast<std::size_t>(p)] = 1;
          stack.push_back(p);
        }
      }
    }
    EXPECT_TRUE(ok) << "AS " << a << " has no provider path to a core";
  }
}

TEST(MaBrite, HostsOnlyInStubAses) {
  const Network net = generate_multi_as(small_multi());
  bool has_stub = false;
  for (const AsInfo& info : net.as_info) has_stub |= info.cls == AsClass::kStub;
  ASSERT_TRUE(has_stub);
  for (NodeId h = net.num_routers; h < static_cast<NodeId>(net.nodes.size());
       ++h) {
    const AsId a = net.nodes[static_cast<std::size_t>(h)].as_id;
    EXPECT_EQ(net.as_info[static_cast<std::size_t>(a)].cls, AsClass::kStub);
  }
}

TEST(MaBrite, InterAsLinksMarked) {
  const Network net = generate_multi_as(small_multi());
  for (const AsAdjacency& adj : net.as_adjacency) {
    const NetLink& l = net.links[static_cast<std::size_t>(adj.link)];
    EXPECT_TRUE(l.inter_as);
    const AsId aa = net.nodes[static_cast<std::size_t>(l.a)].as_id;
    const AsId ab = net.nodes[static_cast<std::size_t>(l.b)].as_id;
    EXPECT_TRUE((aa == adj.as_a && ab == adj.as_b) ||
                (aa == adj.as_b && ab == adj.as_a));
  }
  // And no intra-AS link is marked inter-AS.
  for (const NetLink& l : net.links) {
    if (!net.is_router(l.a) || !net.is_router(l.b)) continue;
    const AsId aa = net.nodes[static_cast<std::size_t>(l.a)].as_id;
    const AsId ab = net.nodes[static_cast<std::size_t>(l.b)].as_id;
    EXPECT_EQ(l.inter_as, aa != ab);
  }
}

TEST(MaBrite, Deterministic) {
  const Network a = generate_multi_as(small_multi());
  const Network b = generate_multi_as(small_multi());
  EXPECT_EQ(a.links.size(), b.links.size());
  EXPECT_EQ(a.as_adjacency.size(), b.as_adjacency.size());
  for (std::size_t i = 0; i < a.as_adjacency.size(); ++i) {
    EXPECT_EQ(a.as_adjacency[i].as_a, b.as_adjacency[i].as_a);
    EXPECT_EQ(a.as_adjacency[i].rel_ab, b.as_adjacency[i].rel_ab);
  }
}

}  // namespace
}  // namespace massf
