#!/usr/bin/env bash
# Regenerates the golden trace checksum pinned by the regression gates.
#
# The value is the bench_pdes workload checksum (lps=32, chain=64,
# hops=2000, lookahead 1 ms) that appears in:
#   - BENCH_pdes.json            ("checksum" of every executor entry)
#   - tests/pdes_golden_test.cpp (kGoldenChecksum)
#   - tests/ckpt_test.cpp        (kGoldenChecksum, restore-equality pin)
#   - scripts/check_bench.py     (compared exactly, no tolerance)
#
# Only regenerate after an *intentional* change to the workload or the
# event-ordering contract; an unexpected drift is a regression, not a
# reason to re-pin. Update every location above together, and refresh
# BENCH_pdes.json itself by running bench_pdes on a quiet machine.
#
# Usage: tests/regen_golden.sh [build-dir]   (default: build)
set -euo pipefail

build_dir="${1:-build}"
bench="${build_dir}/bench/bench_pdes"
if [[ ! -x "${bench}" ]]; then
  echo "error: ${bench} not found — build first:" >&2
  echo "  cmake -B ${build_dir} -S . && cmake --build ${build_dir} -j" >&2
  exit 1
fi

checksum="$("${bench}" --print-golden)"
echo "golden checksum: ${checksum}"
echo "pin this value in BENCH_pdes.json, tests/pdes_golden_test.cpp,"
echo "and tests/ckpt_test.cpp (kGoldenChecksum)."
