#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <set>

#include "net/netsim.hpp"
#include "routing/forwarding.hpp"
#include "topology/brite.hpp"
#include "traffic/apps.hpp"
#include "traffic/cbr.hpp"
#include "traffic/dataflow.hpp"
#include "traffic/http.hpp"
#include "traffic/manager.hpp"
#include "traffic/ping.hpp"
#include "traffic/vm.hpp"

namespace massf {
namespace {

struct Fixture {
  explicit Fixture(SimTime end = seconds(60), std::int32_t lps = 1)
      : net(make_net()) {
    std::vector<NodeId> dests;
    for (NodeId h = net.num_routers;
         h < static_cast<NodeId>(net.nodes.size()); ++h) {
      hosts.push_back(h);
      dests.push_back(net.nodes[static_cast<std::size_t>(h)].attach_router);
    }
    fp = std::make_unique<ForwardingPlane>(
        ForwardingPlane::build_flat(net, dests));

    std::vector<LpId> map(static_cast<std::size_t>(net.num_routers), 0);
    if (lps > 1) {
      for (NodeId r = 0; r < net.num_routers; ++r) {
        map[static_cast<std::size_t>(r)] =
            static_cast<LpId>(r * lps / net.num_routers);
      }
    }
    EngineOptions eo;
    eo.lookahead = microseconds(100);
    eo.end_time = end;
    engine = std::make_unique<Engine>(eo);
    // Use the real min cross-LP latency when split.
    if (lps > 1) {
      SimTime mll = kSimTimeMax;
      for (const NetLink& l : net.links) {
        if (net.is_router(l.a) && net.is_router(l.b) &&
            map[static_cast<std::size_t>(l.a)] !=
                map[static_cast<std::size_t>(l.b)]) {
          mll = std::min(mll, l.latency);
        }
      }
      EngineOptions eo2 = eo;
      eo2.lookahead = mll;
      engine = std::make_unique<Engine>(eo2);
    }
    sim = std::make_unique<NetSim>(net, *fp, map, *engine, NetSimOptions{});
    manager = std::make_unique<TrafficManager>(*sim);
  }

  static Network make_net() {
    BriteOptions o;
    o.num_routers = 40;
    o.num_hosts = 20;
    o.seed = 31;
    return generate_flat(o);
  }

  Network net;
  std::unique_ptr<ForwardingPlane> fp;
  std::vector<NodeId> hosts;
  std::unique_ptr<Engine> engine;
  std::unique_ptr<NetSim> sim;
  std::unique_ptr<TrafficManager> manager;
};

TEST(Tags, PackUnpack) {
  const std::uint32_t tag = make_tag(TrafficKind::kApp, 0x0ABCDEF);
  EXPECT_EQ(tag_kind(tag), TrafficKind::kApp);
  EXPECT_EQ(tag_payload(tag), 0x0ABCDEFu);
  const std::uint64_t t = make_timer(TrafficKind::kHttp, 0xFFEEDDCCBBULL);
  EXPECT_EQ(timer_kind(t), TrafficKind::kHttp);
  EXPECT_EQ(timer_payload(t), 0xFFEEDDCCBBULL);
}

TEST(Manager, DispatchesByKind) {
  struct Probe final : TrafficComponent {
    void start(Engine&, NetSim&) override {}
    void on_timer(Engine&, NetSim&, NodeId, std::uint64_t payload,
                  std::uint64_t) override {
      last_payload = payload;
    }
    std::uint64_t last_payload = 0;
  };
  Fixture f;
  auto probe = std::make_unique<Probe>();
  Probe* p = probe.get();
  f.manager->add(TrafficKind::kApp, std::move(probe));
  f.sim->schedule_app_timer(*f.engine, f.hosts[0], milliseconds(1),
                            make_timer(TrafficKind::kApp, 77));
  // A timer for an unregistered kind must be ignored, not crash.
  f.sim->schedule_app_timer(*f.engine, f.hosts[0], milliseconds(2),
                            make_timer(TrafficKind::kHttp, 1));
  f.engine->run();
  EXPECT_EQ(p->last_payload, 77u);
}

TEST(Http, RequestResponseCycleRuns) {
  Fixture f(seconds(30));
  HttpOptions ho;
  ho.think_time_mean_s = 0.5;
  ho.file_mean_bytes = 20e3;
  ho.seed = 1;
  std::vector<NodeId> clients(f.hosts.begin(), f.hosts.begin() + 10);
  std::vector<NodeId> servers(f.hosts.begin() + 10, f.hosts.begin() + 15);
  auto http = std::make_unique<HttpWorkload>(clients, servers, ho);
  HttpWorkload* h = http.get();
  f.manager->add(TrafficKind::kHttp, std::move(http));
  f.manager->start(*f.engine, *f.sim);
  f.engine->run();
  EXPECT_GT(h->requests_issued(), 50u);
  EXPECT_GT(h->responses_completed(), 40u);
  // Flow conservation: every completed response implies a completed
  // request; in-flight difference is bounded by the client count.
  EXPECT_LE(h->responses_completed(), h->requests_issued());
  EXPECT_LE(h->requests_issued() - h->responses_completed(),
            clients.size() + 1);
}

TEST(Http, DeterministicAcrossRuns) {
  const auto run_once = [] {
    Fixture f(seconds(10));
    HttpOptions ho;
    ho.think_time_mean_s = 0.3;
    ho.seed = 7;
    std::vector<NodeId> clients(f.hosts.begin(), f.hosts.begin() + 8);
    std::vector<NodeId> servers(f.hosts.begin() + 8, f.hosts.begin() + 12);
    auto http = std::make_unique<HttpWorkload>(clients, servers, ho);
    HttpWorkload* h = http.get();
    f.manager->add(TrafficKind::kHttp, std::move(http));
    f.manager->start(*f.engine, *f.sim);
    const RunStats stats = f.engine->run();
    return std::make_pair(stats.total_events, h->responses_completed());
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Dataflow, HcChainIterates) {
  Fixture f(seconds(30));
  GridNpbOptions go;
  go.compute = milliseconds(10);
  go.data_bytes = 20 * 1024;
  std::vector<NodeId> app_hosts(f.hosts.begin(), f.hosts.begin() + 5);
  auto app = std::make_unique<DataflowApp>(make_gridnpb_hc(app_hosts, go),
                                           milliseconds(1));
  DataflowApp* a = app.get();
  f.manager->add(TrafficKind::kApp, std::move(app));
  f.manager->start(*f.engine, *f.sim);
  f.engine->run();
  // The chain should cycle many times in 30 virtual seconds.
  EXPECT_GT(a->firings(), 20u);
}

TEST(Dataflow, ScalapackAllTasksFire) {
  Fixture f(seconds(20));
  ScaLapackOptions so;
  so.block_bytes = 50 * 1024;
  so.compute = milliseconds(20);
  std::vector<NodeId> app_hosts(f.hosts.begin(), f.hosts.begin() + 9);
  auto app = std::make_unique<DataflowApp>(make_scalapack(app_hosts, so),
                                           milliseconds(1));
  DataflowApp* a = app.get();
  f.manager->add(TrafficKind::kApp, std::move(app));
  f.manager->start(*f.engine, *f.sim);
  f.engine->run();
  // 3x3 grid: 9 tasks, each with 4 peers; all iterate.
  EXPECT_EQ(a->graph().tasks.size(), 9u);
  EXPECT_GT(a->firings(), 9u * 3);
}

TEST(Dataflow, MultiLpMatchesSingleLp) {
  const auto run_once = [](std::int32_t lps) {
    Fixture f(seconds(10), lps);
    GridNpbOptions go;
    go.compute = milliseconds(10);
    std::vector<NodeId> app_hosts(f.hosts.begin(), f.hosts.begin() + 6);
    auto app = std::make_unique<DataflowApp>(make_gridnpb_hc(app_hosts, go),
                                             milliseconds(1));
    DataflowApp* a = app.get();
    f.manager->add(TrafficKind::kApp, std::move(app));
    f.manager->start(*f.engine, *f.sim);
    f.engine->run();
    return a->firings();
  };
  EXPECT_EQ(run_once(1), run_once(3));
}

// ---- Virtual-host CPU scheduler -------------------------------------------

TEST(VmHosts, SingleTaskTakesNominalTime) {
  Fixture f(seconds(30));
  auto vm_ptr =
      std::make_unique<VmHosts>(std::span<const NodeId>(f.hosts), 1e6);
  VmHosts* vm = vm_ptr.get();
  f.manager->add(TrafficKind::kVm, std::move(vm_ptr));
  SimTime done_at = -1;
  vm->set_task_done([&](Engine& e, NetSim&, NodeId, std::uint64_t cookie) {
    EXPECT_EQ(cookie, 42u);
    done_at = e.now();
  });
  // 2e6 ops at 1e6 ops/s = 2 s on an idle host.
  vm->submit(*f.engine, *f.sim, f.hosts[0], 2e6, 42);
  f.engine->run();
  EXPECT_NEAR(to_seconds(done_at), 2.0, 0.01);
}

TEST(VmHosts, ProportionalSharingStretchesTasks) {
  Fixture f(seconds(60));
  auto vm_ptr =
      std::make_unique<VmHosts>(std::span<const NodeId>(f.hosts), 1e6);
  VmHosts* vm = vm_ptr.get();
  f.manager->add(TrafficKind::kVm, std::move(vm_ptr));
  std::vector<double> done_times(2, -1);
  vm->set_task_done([&](Engine& e, NetSim&, NodeId, std::uint64_t cookie) {
    done_times[cookie] = to_seconds(e.now());
  });
  // Two equal 1 s tasks on the same host share the CPU: both finish at 2 s.
  vm->submit(*f.engine, *f.sim, f.hosts[0], 1e6, 0);
  vm->submit(*f.engine, *f.sim, f.hosts[0], 1e6, 1);
  f.engine->run();
  EXPECT_NEAR(done_times[0], 2.0, 0.01);
  EXPECT_NEAR(done_times[1], 2.0, 0.01);
}

TEST(VmHosts, ShortTaskFinishesFirstAndReleasesShare) {
  Fixture f(seconds(60));
  auto vm_ptr =
      std::make_unique<VmHosts>(std::span<const NodeId>(f.hosts), 1e6);
  VmHosts* vm = vm_ptr.get();
  f.manager->add(TrafficKind::kVm, std::move(vm_ptr));
  std::vector<double> done_times(2, -1);
  vm->set_task_done([&](Engine& e, NetSim&, NodeId, std::uint64_t cookie) {
    done_times[cookie] = to_seconds(e.now());
  });
  // Short (0.5 s solo) + long (2 s solo): short finishes at 1.0 s (shared
  // half-speed), long at 1.0 + 1.5 = 2.5 s.
  vm->submit(*f.engine, *f.sim, f.hosts[0], 0.5e6, 0);
  vm->submit(*f.engine, *f.sim, f.hosts[0], 2e6, 1);
  f.engine->run();
  EXPECT_NEAR(done_times[0], 1.0, 0.02);
  EXPECT_NEAR(done_times[1], 2.5, 0.02);
}

TEST(VmHosts, IndependentHostsDoNotInterfere) {
  Fixture f(seconds(60));
  auto vm_ptr =
      std::make_unique<VmHosts>(std::span<const NodeId>(f.hosts), 1e6);
  VmHosts* vm = vm_ptr.get();
  f.manager->add(TrafficKind::kVm, std::move(vm_ptr));
  std::vector<double> done_times(2, -1);
  vm->set_task_done([&](Engine& e, NetSim&, NodeId, std::uint64_t cookie) {
    done_times[cookie] = to_seconds(e.now());
  });
  vm->submit(*f.engine, *f.sim, f.hosts[0], 1e6, 0);
  vm->submit(*f.engine, *f.sim, f.hosts[1], 1e6, 1);
  f.engine->run();
  EXPECT_NEAR(done_times[0], 1.0, 0.01);
  EXPECT_NEAR(done_times[1], 1.0, 0.01);
}

TEST(VmHosts, ChainedSubmissionFromCallback) {
  Fixture f(seconds(60));
  auto vm_ptr =
      std::make_unique<VmHosts>(std::span<const NodeId>(f.hosts), 1e6);
  VmHosts* vm = vm_ptr.get();
  f.manager->add(TrafficKind::kVm, std::move(vm_ptr));
  int completions = 0;
  SimTime last = -1;
  vm->set_task_done([&](Engine& e, NetSim& s, NodeId host,
                        std::uint64_t cookie) {
    ++completions;
    last = e.now();
    if (cookie < 2) vm->submit(e, s, host, 1e6, cookie + 1);
  });
  vm->submit(*f.engine, *f.sim, f.hosts[0], 1e6, 0);
  f.engine->run();
  EXPECT_EQ(completions, 3);
  EXPECT_NEAR(to_seconds(last), 3.0, 0.02);
}

TEST(VmHosts, DataflowComputeStretchesUnderColocation) {
  // Two HC chains pinned to the same two hosts, computing through a shared
  // VmHosts: iterations take longer than with fixed delays.
  const auto firings_with = [&](bool use_vm) {
    Fixture f(seconds(20));
    std::vector<NodeId> app_hosts{f.hosts[0], f.hosts[1]};
    GridNpbOptions go;
    go.compute = milliseconds(100);
    go.data_bytes = 2000;
    DataflowGraph g1 = make_gridnpb_hc(app_hosts, go);
    DataflowGraph g2 = make_gridnpb_hc(app_hosts, go);
    std::vector<DataflowGraph> graphs;
    graphs.push_back(std::move(g1));
    graphs.push_back(std::move(g2));
    auto app = std::make_unique<DataflowApp>(merge_graphs(graphs),
                                             milliseconds(1));
    DataflowApp* a = app.get();
    if (use_vm) {
      auto vm = std::make_unique<VmHosts>(
          std::span<const NodeId>(app_hosts), 1e6);
      a->use_vm(vm.get());
      f.manager->add(TrafficKind::kVm, std::move(vm));
    }
    f.manager->add(TrafficKind::kApp, std::move(app));
    f.manager->start(*f.engine, *f.sim);
    f.engine->run();
    return a->firings();
  };
  const auto fixed = firings_with(false);
  const auto shared = firings_with(true);
  EXPECT_GT(fixed, 20u);
  EXPECT_LT(shared, fixed);  // contention slows the chains down
}

// ---- Ping probe ------------------------------------------------------------

TEST(Ping, RttMatchesPathLatency) {
  Fixture f(seconds(10));
  auto probe_ptr = std::make_unique<PingProbe>();
  PingProbe* probe = probe_ptr.get();
  f.manager->add(TrafficKind::kPing, std::move(probe_ptr));

  const NodeId src = f.hosts[0];
  const NodeId dst = f.hosts[5];
  probe->ping(*f.engine, *f.sim, src, dst, milliseconds(1));
  f.engine->run();
  ASSERT_EQ(probe->replies(), 1u);
  const SimTime rtt = probe->results()[0].rtt;
  ASSERT_GT(rtt, 0);

  // Compute the one-way path latency along the forwarding path.
  SimTime one_way = 0;
  NodeId cur = f.net.nodes[static_cast<std::size_t>(src)].attach_router;
  one_way += f.net.links[static_cast<std::size_t>(
                             f.net.incident(src)[0].link)]
                 .latency;
  int hops = 0;
  while (true) {
    const LinkId l = f.fp->next_link(cur, dst);
    ASSERT_NE(l, kInvalidLink);
    const NetLink& link = f.net.links[static_cast<std::size_t>(l)];
    one_way += link.latency;
    const NodeId next = link.a == cur ? link.b : link.a;
    if (next == dst) break;
    cur = next;
    ASSERT_LT(++hops, 100);
  }
  // RTT = 2 x (propagation) + serialization; serialization of ~100-byte
  // datagrams on >= 100 Mbps links is tiny, so RTT is within a few percent
  // of 2 x one-way.
  EXPECT_GE(rtt, 2 * one_way);
  EXPECT_LE(to_seconds(rtt), 2 * to_seconds(one_way) * 1.05 + 1e-4);
}

TEST(Ping, ManyProbesAllAnswered) {
  Fixture f(seconds(20));
  auto probe_ptr = std::make_unique<PingProbe>();
  PingProbe* probe = probe_ptr.get();
  f.manager->add(TrafficKind::kPing, std::move(probe_ptr));
  const int n = 20;
  for (int i = 0; i < n; ++i) {
    probe->ping(*f.engine, *f.sim, f.hosts[i % 10],
                f.hosts[10 + (i % 8)], milliseconds(1 + i));
  }
  f.engine->run();
  EXPECT_EQ(probe->replies(), static_cast<std::size_t>(n));
}

TEST(Ping, LostOnDownLinkLeavesNoReply) {
  Fixture f(seconds(10));
  auto probe_ptr = std::make_unique<PingProbe>();
  PingProbe* probe = probe_ptr.get();
  f.manager->add(TrafficKind::kPing, std::move(probe_ptr));
  // Cut the source host's access link: the request is dropped silently.
  const NodeId src = f.hosts[0];
  f.sim->link_model().schedule_link_state(
      *f.engine, f.net.incident(src)[0].link, microseconds(100), false);
  probe->ping(*f.engine, *f.sim, src, f.hosts[3], milliseconds(1));
  f.engine->run();
  EXPECT_EQ(probe->replies(), 0u);
  EXPECT_EQ(probe->results()[0].rtt, -1);
}

// ---- CBR streams ------------------------------------------------------------

TEST(Cbr, DeliversAtConfiguredRate) {
  Fixture f(seconds(10));
  CbrOptions co;
  co.rate_bps = 800e3;  // 100 packets/s at 1000 B
  co.packet_bytes = 1000;
  std::vector<CbrWorkload::Stream> streams{{f.hosts[0], f.hosts[5]},
                                           {f.hosts[1], f.hosts[6]}};
  auto cbr_ptr = std::make_unique<CbrWorkload>(streams, co);
  CbrWorkload* cbr = cbr_ptr.get();
  f.manager->add(TrafficKind::kCbr, std::move(cbr_ptr));
  f.manager->start(*f.engine, *f.sim);
  f.engine->run();
  // ~100 packets/s per stream over ~10 s.
  EXPECT_NEAR(static_cast<double>(cbr->packets_sent()), 2 * 1000, 30);
  // Uncongested network: everything arrives except datagrams still in
  // flight when the horizon closes.
  EXPECT_GE(cbr->packets_received() + 10, cbr->packets_sent());
  EXPECT_LE(cbr->packets_received(), cbr->packets_sent());
  EXPECT_EQ(f.sim->totals().dropped_queue, 0u);
  EXPECT_NEAR(static_cast<double>(cbr->received_per_stream()[0]),
              static_cast<double>(cbr->received_per_stream()[1]), 5);
}

TEST(Cbr, LossUnderCongestionWithoutRecovery) {
  // A CBR stream over a link it oversubscribes: packets drop and stay
  // dropped (no congestion response — by design).
  Fixture f(seconds(5));
  CbrOptions co;
  co.rate_bps = 2e8;  // 200 Mbps into 100 Mbps access links
  co.packet_bytes = 1400;
  std::vector<CbrWorkload::Stream> streams{{f.hosts[0], f.hosts[5]}};
  auto cbr_ptr = std::make_unique<CbrWorkload>(streams, co);
  CbrWorkload* cbr = cbr_ptr.get();
  f.manager->add(TrafficKind::kCbr, std::move(cbr_ptr));
  f.manager->start(*f.engine, *f.sim);
  f.engine->run();
  EXPECT_LT(cbr->packets_received(), cbr->packets_sent());
  EXPECT_GT(f.sim->totals().dropped_queue, 0u);
}

// ---- Link statistics ------------------------------------------------------

TEST(LinkStats, UtilizationReflectsCarriedBytes) {
  Network net = Fixture::make_net();
  std::vector<NodeId> hosts, dests;
  for (NodeId h = net.num_routers;
       h < static_cast<NodeId>(net.nodes.size()); ++h) {
    hosts.push_back(h);
    dests.push_back(net.nodes[static_cast<std::size_t>(h)].attach_router);
  }
  const ForwardingPlane fp = ForwardingPlane::build_flat(net, dests);
  EngineOptions eo;
  eo.lookahead = microseconds(100);
  eo.end_time = seconds(30);
  Engine engine(eo);
  const std::vector<LpId> map(static_cast<std::size_t>(net.num_routers), 0);
  NetSimOptions no;
  no.collect_link_stats = true;
  NetSim sim(net, fp, map, engine, no);
  TrafficManager manager(sim);

  sim.start_flow(engine, milliseconds(1), hosts[0], hosts[1], 500000, 1);
  const RunStats stats = engine.run();
  (void)stats;

  // The source host's access link carried at least the flow's bytes
  // (payload + headers) in the host->router direction.
  const LinkId access = net.incident(hosts[0])[0].link;
  const NetLink& l = net.links[static_cast<std::size_t>(access)];
  const int dir = l.a == hosts[0] ? 0 : 1;
  const auto& bytes = sim.link_model().link_bytes();
  EXPECT_GE(bytes[static_cast<std::size_t>(access) * 2 +
                  static_cast<std::size_t>(dir)],
            500000u);
  // Utilization over the active second is meaningful and <= 1.
  const double util =
      sim.link_model().link_utilization(access, dir, seconds(1));
  EXPECT_GT(util, 0.0);
  EXPECT_LE(util, 1.0);
}

TEST(AppFactories, ScalapackShape) {
  std::vector<NodeId> hosts(16);
  std::iota(hosts.begin(), hosts.end(), 100);
  const DataflowGraph g = make_scalapack(hosts, ScaLapackOptions{});
  EXPECT_EQ(g.tasks.size(), 16u);  // 4x4 grid
  // Each task sends to 3 row + 3 col peers.
  EXPECT_EQ(g.edges.size(), 16u * 6);
  for (const auto& t : g.tasks) EXPECT_TRUE(t.initial);
}

TEST(AppFactories, HcShape) {
  std::vector<NodeId> hosts(5);
  std::iota(hosts.begin(), hosts.end(), 100);
  const DataflowGraph g = make_gridnpb_hc(hosts, GridNpbOptions{});
  EXPECT_EQ(g.tasks.size(), 5u);
  EXPECT_EQ(g.edges.size(), 5u);  // ring
  int initials = 0;
  for (const auto& t : g.tasks) initials += t.initial;
  EXPECT_EQ(initials, 1);
}

TEST(AppFactories, VpStagesCycle) {
  std::vector<NodeId> hosts(9);
  std::iota(hosts.begin(), hosts.end(), 100);
  const DataflowGraph g = make_gridnpb_vp(hosts, GridNpbOptions{});
  EXPECT_EQ(g.tasks.size(), 9u);
  // Every task must be reachable as a destination (cyclic pipeline).
  std::vector<int> indeg(g.tasks.size(), 0);
  for (const auto& e : g.edges) ++indeg[static_cast<std::size_t>(e.dst_task)];
  for (int d : indeg) EXPECT_GT(d, 0);
}

TEST(AppFactories, MbHasVariedSizes) {
  std::vector<NodeId> hosts(8);
  std::iota(hosts.begin(), hosts.end(), 100);
  const DataflowGraph g = make_gridnpb_mb(hosts, GridNpbOptions{});
  std::set<std::uint32_t> sizes;
  for (const auto& e : g.edges) sizes.insert(e.bytes);
  EXPECT_GT(sizes.size(), 2u);
}

TEST(AppFactories, MergeOffsetsIndices) {
  std::vector<NodeId> hosts(12);
  std::iota(hosts.begin(), hosts.end(), 100);
  const auto graphs = make_gridnpb_mix(hosts, GridNpbOptions{});
  ASSERT_EQ(graphs.size(), 3u);
  const DataflowGraph merged = merge_graphs(graphs);
  std::size_t total_tasks = 0, total_edges = 0;
  for (const auto& g : graphs) {
    total_tasks += g.tasks.size();
    total_edges += g.edges.size();
  }
  EXPECT_EQ(merged.tasks.size(), total_tasks);
  EXPECT_EQ(merged.edges.size(), total_edges);
  for (const auto& e : merged.edges) {
    EXPECT_LT(static_cast<std::size_t>(e.dst_task), merged.tasks.size());
  }
  EXPECT_NE(merged.name.find("HC"), std::string::npos);
  EXPECT_NE(merged.name.find("MB"), std::string::npos);
}

}  // namespace
}  // namespace massf
