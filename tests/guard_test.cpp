// Supervision subsystem (src/guard, DESIGN.md section 5h): the liveness
// watchdog, the structured error taxonomy, and checkpoint-based
// auto-recovery.
//
// The headline property mirrors the checkpoint suite's: a run that *stalls*
// (here: a test-injected frozen channel clock) and is recovered by
// GuardedRun — restore the latest massf.ckpt.v1 checkpoint, degrade channel
// clocks to global barriers — must still produce the exact golden trace
// checksum (807988445054369792) that pdes_golden_test.cpp and
// BENCH_pdes.json pin for uninterrupted runs. Recovery is allowed to change
// who waits on whom, never what happens.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "ckpt/ckpt.hpp"
#include "guard/guarded_run.hpp"
#include "guard/options.hpp"
#include "guard/watchdog.hpp"
#include "obs/metrics.hpp"
#include "pdes/engine.hpp"
#include "util/error.hpp"

namespace massf {
namespace {

// ---- error taxonomy ---------------------------------------------------------

TEST(EngineErrorTaxonomy, CarriesCategoryLocationAndMessage) {
  try {
    MASSF_THROW(ErrorCategory::kTopology, "test boom");
    FAIL() << "MASSF_THROW did not throw";
  } catch (const EngineError& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kTopology);
    const std::string what = e.what();
    EXPECT_NE(what.find("topology"), std::string::npos) << what;
    EXPECT_NE(what.find("test boom"), std::string::npos) << what;
    EXPECT_NE(what.find("guard_test.cpp"), std::string::npos) << what;
    EXPECT_GT(e.line(), 0);
  }
}

TEST(EngineErrorTaxonomy, EnforcePassesAndThrows) {
  EXPECT_NO_THROW(MASSF_ENFORCE(1 + 1 == 2, ErrorCategory::kInternal, "no"));
  EXPECT_THROW(MASSF_ENFORCE(false, ErrorCategory::kConfig, "yes"),
               EngineError);
}

TEST(EngineErrorTaxonomy, CategoryNamesAreStable) {
  EXPECT_STREQ(error_category_name(ErrorCategory::kConfig), "config");
  EXPECT_STREQ(error_category_name(ErrorCategory::kTopology), "topology");
  EXPECT_STREQ(error_category_name(ErrorCategory::kProtocolStall),
               "protocol-stall");
  EXPECT_STREQ(error_category_name(ErrorCategory::kIo), "io");
  EXPECT_STREQ(error_category_name(ErrorCategory::kInternal), "internal");
}

// ---- shared workload --------------------------------------------------------

// Mirrors RingLp in bench/bench_pdes.cpp (the BENCH_pdes.json workload).
constexpr std::uint64_t kGoldenChecksum = 807988445054369792ULL;
constexpr std::uint64_t kGoldenEvents = 4162080ULL;
constexpr std::uint64_t kGoldenWindows = 2001ULL;
constexpr std::int32_t kEvHop = 1;
constexpr std::int32_t kEvLocal = 2;

class RingLp final : public LogicalProcess {
 public:
  RingLp(LpId next, std::int64_t chain) : next_(next), chain_(chain) {}

  void handle(Engine& engine, const Event& ev) override {
    checksum = checksum * 1099511628211ULL +
               static_cast<std::uint64_t>(ev.time);
    if (ev.type == kEvHop) {
      if (ev.a > 0) {
        engine.schedule(next_, ev.time + engine.options().lookahead, kEvHop,
                        ev.a - 1);
      }
      if (chain_ > 0) {
        engine.schedule(engine.current_lp(), ev.time + microseconds(1),
                        kEvLocal, static_cast<std::uint64_t>(chain_ - 1));
      }
    } else if (ev.a > 0) {
      engine.schedule(engine.current_lp(), ev.time + microseconds(1), kEvLocal,
                      ev.a - 1);
    }
  }

  void save(ckpt::Writer& w) const override { w.u64(checksum); }
  bool load(ckpt::Reader& r) override {
    checksum = r.u64();
    return r.ok();
  }

  std::uint64_t checksum = 0;

 private:
  LpId next_;
  std::int64_t chain_;
};

struct RingStack {
  RingStack(const EngineOptions& o, std::int64_t num_lps, std::int64_t chain,
            std::uint64_t hops) {
    engine = std::make_unique<Engine>(o);
    for (std::int64_t i = 0; i < num_lps; ++i) {
      auto lp = std::make_unique<RingLp>(
          static_cast<LpId>((i + 1) % num_lps), chain);
      lps.push_back(lp.get());
      engine->add_lp(std::move(lp));
    }
    for (std::int64_t i = 0; i < num_lps; ++i) {
      engine->schedule(static_cast<LpId>(i), 0, kEvHop, hops);
    }
  }

  std::uint64_t checksum() const {
    std::uint64_t c = 0;
    for (const RingLp* lp : lps) c = c * 31 + lp->checksum;
    return c;
  }

  std::unique_ptr<Engine> engine;
  std::vector<RingLp*> lps;
};

EngineOptions guarded_options(double deadline_s, const std::string& dump) {
  EngineOptions o;
  o.lookahead = milliseconds(1);
  o.end_time = seconds(3600);
  o.sync = SyncMode::kChannel;
  o.guard.enabled = true;
  o.guard.stall_deadline_s = deadline_s;
  o.guard.poll_interval_s = 0.02;
  o.guard.dump_path = dump;
  o.guard.on_stall = guard::OnStall::kCancel;
  return o;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Minimal well-formedness check over the dump: every brace/bracket opened
// outside a string literal is closed, and the document is one object.
bool json_balanced(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char c : s) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string && s.find('{') != std::string::npos;
}

// ---- watchdog ---------------------------------------------------------------

// A healthy run never trips the watchdog, however long it runs.
TEST(Watchdog, StaysQuietOnHealthyRun) {
  EngineOptions o = guarded_options(/*deadline_s=*/10.0, /*dump=*/"");
  RingStack stack(o, /*num_lps=*/4, /*chain=*/4, /*hops=*/200);
  guard::Watchdog watchdog(*stack.engine, o.guard);
  watchdog.arm();
  const RunStats stats = stack.engine->run_threaded(2);
  watchdog.disarm();
  EXPECT_FALSE(watchdog.fired());
  EXPECT_FALSE(stack.engine->run_cancelled());
  EXPECT_GT(stats.total_events, 0u);
  EXPECT_TRUE(watchdog.last_diagnostic().empty());
}

// Freeze one LP's channel clock mid-run: the watchdog must detect the
// stall within the deadline, emit a parseable massf.guard.v1 dump, and —
// under the kCancel policy — unwind the run instead of hanging it.
TEST(Watchdog, FiresOnFrozenLpClockAndWritesDump) {
  const std::string dump = ::testing::TempDir() + "/massf_guard_dump.json";
  std::remove(dump.c_str());

  EngineOptions o = guarded_options(/*deadline_s=*/0.25, dump);
  RingStack stack(o, /*num_lps=*/4, /*chain=*/4, /*hops=*/200000);
  stack.engine->test_freeze_lp_clock(/*lp=*/2, /*after_windows=*/5);

  obs::Registry registry;
  guard::Watchdog watchdog(*stack.engine, o.guard, &registry);
  watchdog.arm();
  const RunStats stats = stack.engine->run_threaded(2);
  watchdog.disarm();

  EXPECT_TRUE(watchdog.fired());
  EXPECT_TRUE(stack.engine->run_cancelled());
  // The run was cancelled well before its 3.6e6-window horizon.
  EXPECT_LT(stats.num_windows, 100u);
  EXPECT_EQ(registry.counter("guard.stalls_detected").value(), 1u);
  EXPECT_EQ(registry.counter("guard.dump_writes").value(), 1u);

  const std::string body = read_file(dump);
  ASSERT_FALSE(body.empty()) << "dump file missing: " << dump;
  EXPECT_TRUE(json_balanced(body)) << body;
  EXPECT_NE(body.find("\"schema\": \"massf.guard.v1\""), std::string::npos);
  EXPECT_NE(body.find("\"reason\": \"no-progress\""), std::string::npos);
  // Per-LP liveness rows: the frozen LP is listed with its channel clock.
  EXPECT_NE(body.find("\"lp\": 2"), std::string::npos);
  EXPECT_NE(body.find("\"queue_depth\""), std::string::npos);
  EXPECT_NE(body.find("\"in_degree\""), std::string::npos);
  EXPECT_EQ(watchdog.last_diagnostic(), body.substr(0, body.size() - 1));
}

// render_diagnostic is usable as a one-shot state dump on an idle engine.
TEST(Watchdog, RenderDiagnosticOnIdleEngineIsWellFormed) {
  EngineOptions o = guarded_options(/*deadline_s=*/1.0, /*dump=*/"");
  RingStack stack(o, /*num_lps=*/3, /*chain=*/0, /*hops=*/1);
  const std::string json =
      guard::Watchdog::render_diagnostic(*stack.engine, 0.0, 1.0);
  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_NE(json.find("massf.guard.v1"), std::string::npos);
  // Telemetry cells are allocated by the run itself; pre-run every LP row
  // renders with zeroed liveness but the row must still be present.
  EXPECT_NE(json.find("\"lp\": 2"), std::string::npos);
}

// ---- degradation ladder (no engine involved) --------------------------------

TEST(GuardedRunLadder, WalksRetryThenBarrierThenSequential) {
  obs::Registry registry;
  guard::GuardedRun::Options opts;
  opts.max_retries = 1;
  guard::GuardedRun runner(opts, &registry);

  std::vector<guard::AttemptPlan> plans;
  const guard::GuardedRunReport report = runner.run(
      SyncMode::kChannel, 4, [&](const guard::AttemptPlan& plan) {
        plans.push_back(plan);
        return guard::AttemptOutcome{guard::AttemptStatus::kStalled, "frozen"};
      });

  // rung 0 twice (1 + max_retries), then barrier fallback, then one thread.
  ASSERT_EQ(plans.size(), 4u);
  EXPECT_EQ(plans[0].sync, SyncMode::kChannel);
  EXPECT_EQ(plans[0].threads, 4);
  EXPECT_EQ(plans[0].rung, 0);
  EXPECT_FALSE(plans[0].restore);
  EXPECT_EQ(plans[1].sync, SyncMode::kChannel);
  EXPECT_EQ(plans[1].rung, 0);
  EXPECT_TRUE(plans[1].restore);
  EXPECT_EQ(plans[2].sync, SyncMode::kBarrier);
  EXPECT_EQ(plans[2].threads, 4);
  EXPECT_EQ(plans[2].rung, 1);
  EXPECT_EQ(plans[3].sync, SyncMode::kBarrier);
  EXPECT_EQ(plans[3].threads, 1);
  EXPECT_EQ(plans[3].rung, 2);

  EXPECT_FALSE(report.completed);
  EXPECT_EQ(report.attempts, 4);
  EXPECT_EQ(report.stalls, 4u);
  EXPECT_EQ(report.degraded_rung, -1);
  EXPECT_EQ(registry.counter("guard.retries").value(), 3u);
  EXPECT_EQ(registry.gauge("guard.degraded_mode").value(), -1.0);
}

TEST(GuardedRunLadder, SequentialRequestHasNoDegradationRungs) {
  guard::GuardedRun runner({}, nullptr);
  int calls = 0;
  const guard::GuardedRunReport report = runner.run(
      SyncMode::kBarrier, 0, [&](const guard::AttemptPlan&) {
        ++calls;
        return guard::AttemptOutcome{guard::AttemptStatus::kFailed, "boom"};
      });
  EXPECT_EQ(calls, 2);  // 1 + default max_retries, nothing to degrade to
  EXPECT_FALSE(report.completed);
  EXPECT_EQ(report.errors, 2u);
  EXPECT_EQ(report.last_error, "boom");
}

TEST(GuardedRunLadder, FirstTryCompletionIsNotARecovery) {
  obs::Registry registry;
  guard::GuardedRun runner({}, &registry);
  const guard::GuardedRunReport report = runner.run(
      SyncMode::kChannel, 2, [](const guard::AttemptPlan&) {
        return guard::AttemptOutcome{};
      });
  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.attempts, 1);
  EXPECT_EQ(report.degraded_rung, 0);
  EXPECT_EQ(registry.counter("guard.recoveries").value(), 0u);
  EXPECT_EQ(registry.counter("guard.retries").value(), 0u);
  EXPECT_EQ(registry.gauge("guard.degraded_mode").value(), 0.0);
}

// ---- end-to-end recovery ----------------------------------------------------

// The headline: the golden bench workload under channel clocks, one LP's
// clock frozen at window 1000 (after the window-1000 checkpoint lands).
// The watchdog cancels the stalled attempt; GuardedRun restores the
// checkpoint under the barrier fallback and the run must finish with the
// same checksum, event count, and window count as an uninterrupted run.
TEST(GuardedRun, RecoversFrozenChannelRunToGoldenChecksum) {
  const std::string ckpt_path =
      ::testing::TempDir() + "/massf_guard_golden.ckpt";
  const std::string dump = ::testing::TempDir() + "/massf_guard_golden.json";
  std::remove(ckpt_path.c_str());
  std::remove(dump.c_str());

  obs::Registry registry;
  std::uint64_t checksum = 0;
  RunStats final_stats;

  auto attempt = [&](const guard::AttemptPlan& plan) -> guard::AttemptOutcome {
    EngineOptions o = guarded_options(/*deadline_s=*/0.3, dump);
    o.sync = plan.sync;
    RingStack stack(o, /*num_lps=*/32, /*chain=*/64, /*hops=*/2000);

    ckpt::Participants parts;
    Engine* eng = stack.engine.get();
    parts.add(
        "engine", [eng](ckpt::Writer& w) { eng->save_state(w); },
        [eng](ckpt::Reader& r) { return eng->restore_state(r); });

    if (plan.restore) {
      std::string error;
      const auto parsed = ckpt::Checkpoint::read_file(ckpt_path, &error);
      if (!parsed.has_value()) {
        return {guard::AttemptStatus::kFailed, "checkpoint read: " + error};
      }
      if (!parts.restore(*parsed, &error)) {
        return {guard::AttemptStatus::kFailed, "checkpoint restore: " + error};
      }
    }
    eng->set_ckpt_hook(500, [&parts, &ckpt_path](Engine&, SimTime) {
      ckpt::Checkpoint ck;
      parts.save(ck);
      std::string error;
      ASSERT_TRUE(ck.write_file(ckpt_path, &error)) << error;
    });
    if (plan.sync == SyncMode::kChannel) {
      // The stall injection only exists on the channel-clock protocol; the
      // barrier fallback runs clean — exactly the degradation contract.
      eng->test_freeze_lp_clock(/*lp=*/3, /*after_windows=*/1000);
    }

    guard::Watchdog watchdog(*eng, o.guard, &registry);
    watchdog.arm();
    const RunStats stats = plan.threads > 0
                               ? eng->run_threaded(plan.threads)
                               : eng->run();
    watchdog.disarm();
    if (eng->run_cancelled()) {
      return {guard::AttemptStatus::kStalled, watchdog.last_diagnostic()};
    }
    checksum = stack.checksum();
    final_stats = stats;
    return {};
  };

  guard::GuardedRun::Options opts;
  opts.max_retries = 0;  // straight to the barrier fallback after the stall
  guard::GuardedRun runner(opts, &registry);
  const guard::GuardedRunReport report =
      runner.run(SyncMode::kChannel, 2, attempt);

  ASSERT_TRUE(report.completed) << report.last_error;
  EXPECT_EQ(report.attempts, 2);
  EXPECT_EQ(report.stalls, 1u);
  EXPECT_EQ(report.degraded_rung, 1);

  EXPECT_EQ(checksum, kGoldenChecksum);
  EXPECT_EQ(final_stats.total_events, kGoldenEvents);
  EXPECT_EQ(final_stats.num_windows, kGoldenWindows);

  EXPECT_GE(registry.counter("guard.stalls_detected").value(), 1u);
  EXPECT_GE(registry.counter("guard.dump_writes").value(), 1u);
  EXPECT_EQ(registry.counter("guard.retries").value(), 1u);
  EXPECT_EQ(registry.counter("guard.recoveries").value(), 1u);
  EXPECT_EQ(registry.gauge("guard.degraded_mode").value(), 1.0);

  const std::string body = read_file(dump);
  ASSERT_FALSE(body.empty());
  EXPECT_TRUE(json_balanced(body)) << body;
  EXPECT_NE(body.find("massf.guard.v1"), std::string::npos);
}

}  // namespace
}  // namespace massf
