// Reproduces paper Figure 9: parallel efficiency on the single-AS network.
// Expected shape: HPROF highest (paper: ~40% for ScaLapack, a ~64%
// improvement over TOP2).
#include "common.hpp"

int main() {
  using namespace massf;
  using namespace massf::bench;
  const auto entries = run_matrix(/*multi_as=*/false, kApps, kMainKinds);
  print_figure("Figure 9: Parallel Efficiency on Single-AS", "fraction",
               entries, [](const ExperimentResult& r) {
                 return r.metrics.parallel_efficiency;
               });
  return 0;
}
