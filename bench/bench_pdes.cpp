// Engine throughput baseline: the first entry of the repo's perf
// trajectory (BENCH_pdes.json).
//
// Runs one deterministic synthetic workload — a ring of LPs exchanging
// cross-LP events at exactly the lookahead plus local self-chains inside
// each window — through both executors and reports *real* events/sec, the
// window count, and the real barrier overhead measured by the telemetry
// probe. Subsequent perf PRs diff this file's output; the schema
// ("massf.bench_pdes.v1") is documented in DESIGN.md and README.md.
//
// Usage: bench_pdes [--lps=32] [--chain=64] [--hops=2000] [--threads=N]
//                   [--sweep=1,2,4] [--repeats=3] [--sync=both] [--shards=2]
//                   [--out=BENCH_pdes.json] [--print-golden]
//
// --shards runs the same workload once more under the multi-process
// executor (src/shard, fork mode, no degradation fallback — the bench
// wants the hard failure) and records a "sharded" entry carrying the
// pdes.shard.* transport counters (ring stalls, batch bytes, cross-shard
// events, control-page waits) plus `ring_wait_share`, the fraction of
// total worker-seconds spent blocked on the rings/control page —
// check_bench.py gates it like --min-wait-reduction. The sharded
// checksum must agree with the sequential reference or the bench fails.
// Pass --shards=0 (or 1) to skip the row.
//
// --print-golden runs the sequential reference once and prints only the
// workload checksum — the value pinned by BENCH_pdes.json, the checkpoint
// golden test, and scripts/check_bench.py (regenerate it after an
// intentional workload change with tests/regen_golden.sh).
//
// --sweep runs the threaded executor at each listed thread count (in
// addition to the sequential reference and the --threads run) and records
// one entry per count, so a single invocation captures the scaling curve.
// Pass --sweep=none to skip it. Every run's checksum must agree with the
// sequential reference or the bench fails.
//
// --sync selects the threaded synchronization protocol(s): barrier,
// channel, or both (the default — one "threaded" + "threaded_channel"
// entry pair plus a per-mode sweep, so one report carries baselines for
// both protocols and check_bench.py gates them independently).
//
// Wait-time semantics: every entry reports `barrier_wait_s`, the *summed*
// idle/blocked thread-seconds the probe attributed to synchronization
// (legitimately larger than wall_s — it is a thread-seconds quantity), and
// `barrier_wait_mean_s`, the per-thread mean, which is the number to read
// against wall_s. Barrier entries measure idle time inside the processing
// phase (span x threads - busy); channel entries measure protocol-imposed
// blocking (channel stalls + epoch parks, SyncStats in channel_sync.hpp).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "guard/watchdog.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/probe.hpp"
#include "pdes/engine.hpp"
#include "shard/supervisor.hpp"
#include "util/flags.hpp"

namespace {

using namespace massf;

// Each kEvHop event forwards to the next LP in the ring after the
// lookahead; each hop also spawns a short same-window self-chain so LPs do
// real per-window work between barriers.
constexpr std::int32_t kEvHop = 1;
constexpr std::int32_t kEvLocal = 2;

class RingLp final : public LogicalProcess {
 public:
  RingLp(LpId next, std::int64_t chain) : next_(next), chain_(chain) {}

  void handle(Engine& engine, const Event& ev) override {
    checksum = checksum * 1099511628211ULL + static_cast<std::uint64_t>(ev.time);
    if (ev.type == kEvHop) {
      if (ev.a > 0) {
        engine.schedule(next_, ev.time + engine.options().lookahead, kEvHop,
                        ev.a - 1);
      }
      if (chain_ > 0) {
        engine.schedule(engine.current_lp(), ev.time + microseconds(1),
                        kEvLocal, static_cast<std::uint64_t>(chain_ - 1));
      }
    } else if (ev.a > 0) {
      engine.schedule(engine.current_lp(), ev.time + microseconds(1), kEvLocal,
                      ev.a - 1);
    }
  }

  std::uint64_t checksum = 0;

 private:
  LpId next_;
  std::int64_t chain_;
};

struct Workload {
  std::int64_t lps = 32;
  std::int64_t chain = 64;
  std::int64_t hops = 2000;
};

struct Measurement {
  RunStats stats;
  std::int32_t threads = 0;
  const char* sync = "none";  ///< "none" (sequential), "barrier", "channel"
  double wall_s = 0;
  double events_per_sec = 0;
  std::uint64_t checksum = 0;
  /// Summed thread-seconds attributed to synchronization (a thread-seconds
  /// quantity: legitimately > wall_s on multi-thread runs).
  double barrier_wait_s = 0;
  /// Per-thread mean of barrier_wait_s — the like-with-like number to read
  /// against wall_s.
  double barrier_wait_mean_s = 0;
  double hook_s = 0;
  double process_s = 0;
  double merge_s = 0;
  std::uint64_t null_events = 0;        ///< channel runs only
  std::uint64_t quiescence_epochs = 0;  ///< channel runs only
  bool guard = false;                   ///< run under an armed watchdog
};

Measurement measure(const Workload& w, std::int32_t threads, int repeats,
                    SyncMode sync = SyncMode::kBarrier,
                    bool guarded = false) {
  Measurement best;
  for (int rep = 0; rep < repeats; ++rep) {
    EngineOptions o;
    o.lookahead = milliseconds(1);
    o.end_time = seconds(3600);
    o.sync = sync;
    if (guarded) {
      // Supervised row (DESIGN.md section 5h): liveness telemetry on and
      // the watchdog armed, with a deadline the healthy run never hits —
      // the row measures what supervision costs, not what it does.
      o.guard.enabled = true;
      o.guard.stall_deadline_s = 300.0;
      o.guard.poll_interval_s = 0.05;
    }
    Engine engine(o);
    std::vector<RingLp*> lps;
    for (std::int64_t i = 0; i < w.lps; ++i) {
      auto lp = std::make_unique<RingLp>(
          static_cast<LpId>((i + 1) % w.lps), w.chain);
      lps.push_back(lp.get());
      engine.add_lp(std::move(lp));
    }
    // The ring's true topology: LP i only ever sends to its successor, at
    // exactly the lookahead. Declaring it lets the channel executor
    // synchronize per edge instead of all-pairs.
    ChannelGraph graph;
    for (std::int64_t i = 0; i < w.lps; ++i) {
      graph.add(static_cast<LpId>(i), static_cast<LpId>((i + 1) % w.lps),
                o.lookahead);
    }
    engine.set_channels(std::move(graph));
    for (std::int64_t i = 0; i < w.lps; ++i) {
      engine.schedule(static_cast<LpId>(i), 0, kEvHop,
                      static_cast<std::uint64_t>(w.hops));
    }

    obs::WindowProbe probe;
    engine.set_probe(&probe);

    guard::Watchdog watchdog(engine, o.guard);
    if (guarded) watchdog.arm();
    const auto t0 = std::chrono::steady_clock::now();
    const RunStats stats =
        threads > 0 ? engine.run_threaded(threads) : engine.run();
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    watchdog.disarm();

    Measurement m;
    m.stats = stats;
    m.threads = threads;
    m.sync = threads > 0 ? sync_mode_name(sync) : "none";
    m.guard = guarded;
    m.wall_s = wall_s;
    m.events_per_sec =
        wall_s > 0 ? static_cast<double>(stats.total_events) / wall_s : 0;
    for (const RingLp* lp : lps) {
      m.checksum = m.checksum * 31 + lp->checksum;
    }
    const obs::WindowProbe::Summary s = probe.summary();
    m.barrier_wait_s = s.barrier_wait_s;
    m.barrier_wait_mean_s =
        threads > 0 ? s.barrier_wait_s / threads : s.barrier_wait_s;
    m.hook_s = s.hook_s;
    m.process_s = s.process_s;
    m.merge_s = s.merge_s;
    m.null_events = engine.sync_stats().null_events;
    m.quiescence_epochs = engine.sync_stats().quiescence_epochs;
    if (rep == 0 || m.wall_s < best.wall_s) best = m;
  }
  return best;
}

/// One multi-process run (best of `repeats`): the same ring workload under
/// shard::run_sharded, plus its transport counters.
struct ShardMeasurement {
  shard::ShardResult result;
  std::int32_t shards = 0;
  double wall_s = 0;
  double events_per_sec = 0;
  /// (ring_wait_s + control_wait_s) / (wall_s * shards): the share of
  /// total worker-seconds spent blocked on the cross-shard transport.
  double ring_wait_share = 0;
};

shard::ShardWorkload build_shard_workload(const Workload& w) {
  EngineOptions o;
  o.lookahead = milliseconds(1);
  o.end_time = seconds(3600);
  auto engine = std::make_unique<Engine>(o);
  auto lps = std::make_shared<std::vector<RingLp*>>();
  for (std::int64_t i = 0; i < w.lps; ++i) {
    auto lp =
        std::make_unique<RingLp>(static_cast<LpId>((i + 1) % w.lps), w.chain);
    lps->push_back(lp.get());
    engine->add_lp(std::move(lp));
  }
  ChannelGraph graph;
  for (std::int64_t i = 0; i < w.lps; ++i) {
    graph.add(static_cast<LpId>(i), static_cast<LpId>((i + 1) % w.lps),
              o.lookahead);
  }
  engine->set_channels(std::move(graph));
  for (std::int64_t i = 0; i < w.lps; ++i) {
    engine->schedule(static_cast<LpId>(i), 0, kEvHop,
                     static_cast<std::uint64_t>(w.hops));
  }
  shard::ShardWorkload sw;
  sw.engine = std::move(engine);
  sw.lp_checksum = [lps](LpId i) {
    return (*lps)[static_cast<std::size_t>(i)]->checksum;
  };
  return sw;
}

ShardMeasurement measure_sharded(const Workload& w, std::int32_t shards,
                                 int repeats, obs::Registry* registry) {
  ShardMeasurement best;
  for (int rep = 0; rep < repeats; ++rep) {
    shard::ShardOptions so;
    so.shards = shards;
    so.fallback = false;  // the bench wants the hard failure, not a rung
    const auto t0 = std::chrono::steady_clock::now();
    shard::ShardResult r = shard::run_sharded(
        so, [&w] { return build_shard_workload(w); },
        rep == 0 ? registry : nullptr);
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    ShardMeasurement m;
    m.shards = r.shards;
    m.wall_s = wall_s;
    m.events_per_sec =
        wall_s > 0 ? static_cast<double>(r.stats.total_events) / wall_s : 0;
    m.ring_wait_share =
        wall_s > 0 ? (r.metrics.ring_wait_s + r.metrics.control_wait_s) /
                         (wall_s * r.shards)
                   : 0;
    m.result = std::move(r);
    if (rep == 0 || m.wall_s < best.wall_s) best = m;
  }
  return best;
}

std::string shard_measurement_json(const ShardMeasurement& m) {
  using obs::format_double;
  const shard::ShardMetrics& t = m.result.metrics;
  std::string out = "{\n";
  out += "    \"shards\": " + std::to_string(m.shards) + ",\n";
  out += "    \"events\": " + std::to_string(m.result.stats.total_events) +
         ",\n";
  out += "    \"windows\": " + std::to_string(m.result.stats.num_windows) +
         ",\n";
  out += "    \"wall_s\": " + format_double(m.wall_s) + ",\n";
  out += "    \"events_per_sec\": " + format_double(m.events_per_sec) + ",\n";
  out += "    \"cross_shard_events\": " +
         std::to_string(t.cross_shard_events) + ",\n";
  out += "    \"batch_bytes\": " + std::to_string(t.batch_bytes) + ",\n";
  out += "    \"frames\": " + std::to_string(t.frames) + ",\n";
  out += "    \"ring_stalls\": " + std::to_string(t.ring_stalls) + ",\n";
  out += "    \"ring_wait_s\": " + format_double(t.ring_wait_s) + ",\n";
  out += "    \"control_waits\": " + std::to_string(t.control_waits) + ",\n";
  out += "    \"control_wait_s\": " + format_double(t.control_wait_s) + ",\n";
  out += "    \"ring_wait_share\": " + format_double(m.ring_wait_share) +
         ",\n";
  out += "    \"checksum\": " + std::to_string(m.result.checksum) + "\n";
  out += "  }";
  return out;
}

std::string measurement_json(const Measurement& m, const char* indent) {
  using obs::format_double;
  const std::string in(indent);
  std::string out = "{\n";
  out += in + "  \"threads\": " + std::to_string(m.threads) + ",\n";
  out += in + "  \"sync\": \"" + std::string(m.sync) + "\",\n";
  if (m.guard) out += in + "  \"guard\": true,\n";
  out += in + "  \"events\": " + std::to_string(m.stats.total_events) + ",\n";
  out += in + "  \"windows\": " + std::to_string(m.stats.num_windows) + ",\n";
  out += in + "  \"wall_s\": " + format_double(m.wall_s) + ",\n";
  out +=
      in + "  \"events_per_sec\": " + format_double(m.events_per_sec) + ",\n";
  out += in + "  \"hook_s\": " + format_double(m.hook_s) + ",\n";
  out += in + "  \"process_s\": " + format_double(m.process_s) + ",\n";
  out +=
      in + "  \"barrier_wait_s\": " + format_double(m.barrier_wait_s) + ",\n";
  out += in + "  \"barrier_wait_mean_s\": " +
         format_double(m.barrier_wait_mean_s) + ",\n";
  out += in + "  \"merge_s\": " + format_double(m.merge_s) + ",\n";
  if (std::string(m.sync) == "channel") {
    out += in + "  \"null_events\": " + std::to_string(m.null_events) + ",\n";
    out += in + "  \"quiescence_epochs\": " +
           std::to_string(m.quiescence_epochs) + ",\n";
  }
  out += in + "  \"checksum\": " + std::to_string(m.checksum) + "\n";
  out += in + "}";
  return out;
}

std::string executor_json(const char* name, const Measurement& m) {
  return "  \"" + std::string(name) + "\": " + measurement_json(m, "  ");
}

std::vector<std::int32_t> parse_sweep(const std::string& spec) {
  std::vector<std::int32_t> counts;
  if (spec == "none" || spec.empty()) return counts;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string tok =
        spec.substr(pos, comma == std::string::npos ? spec.npos : comma - pos);
    const int v = std::atoi(tok.c_str());
    if (v >= 1) counts.push_back(v);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return counts;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  Workload w;
  w.lps = flags.get_int("lps", 32);
  w.chain = flags.get_int("chain", 64);
  w.hops = flags.get_int("hops", 2000);
  const auto threads = static_cast<std::int32_t>(flags.get_int(
      "threads",
      std::max(2u, std::min(8u, std::thread::hardware_concurrency()))));
  const int repeats = static_cast<int>(flags.get_int("repeats", 3));
  const auto shards =
      static_cast<std::int32_t>(flags.get_int("shards", 2));
  const std::string out_path =
      flags.get_string("out", "BENCH_pdes.json");
  const std::vector<std::int32_t> sweep =
      parse_sweep(flags.get_string("sweep", "1,2,4"));
  const std::string sync_spec = flags.get_string("sync", "both");
  if (threads < 1 || repeats < 1) {
    std::fprintf(stderr, "[bench_pdes] --threads and --repeats must be >= 1\n");
    return 2;
  }
  std::vector<SyncMode> modes;
  if (sync_spec == "barrier" || sync_spec == "both") {
    modes.push_back(SyncMode::kBarrier);
  }
  if (sync_spec == "channel" || sync_spec == "both") {
    modes.push_back(SyncMode::kChannel);
  }
  if (modes.empty()) {
    std::fprintf(stderr,
                 "[bench_pdes] --sync must be barrier, channel, or both\n");
    return 2;
  }

  if (flags.get_bool("print-golden", false)) {
    const Measurement m = measure(w, /*threads=*/0, /*repeats=*/1);
    std::printf("%llu\n", static_cast<unsigned long long>(m.checksum));
    return 0;
  }

  std::fprintf(stderr,
               "[bench_pdes] lps=%lld chain=%lld hops=%lld threads=%d "
               "repeats=%d\n",
               static_cast<long long>(w.lps), static_cast<long long>(w.chain),
               static_cast<long long>(w.hops), threads, repeats);

  const Measurement seq = measure(w, /*threads=*/0, repeats);
  std::fprintf(stderr, "[bench_pdes] sequential: %.0f events/s (%llu events, %llu windows)\n",
               seq.events_per_sec,
               static_cast<unsigned long long>(seq.stats.total_events),
               static_cast<unsigned long long>(seq.stats.num_windows));

  const auto agrees = [&seq](const Measurement& m) {
    return seq.checksum == m.checksum &&
           seq.stats.total_events == m.stats.total_events;
  };

  // The supervision-cost row: same sequential reference with telemetry on
  // and the watchdog armed. check_bench.py gates the overhead.
  const Measurement seq_guard = measure(w, /*threads=*/0, repeats,
                                        SyncMode::kBarrier, /*guarded=*/true);
  std::fprintf(stderr,
               "[bench_pdes] sequential+guard: %.0f events/s "
               "(%.1f%% overhead vs unguarded)\n",
               seq_guard.events_per_sec,
               seq.events_per_sec > 0
                   ? (1.0 - seq_guard.events_per_sec / seq.events_per_sec) *
                         100.0
                   : 0.0);
  if (!agrees(seq_guard)) {
    std::fprintf(stderr,
                 "[bench_pdes] ERROR: guarded run perturbed the trace "
                 "(checksum %llu vs %llu)\n",
                 static_cast<unsigned long long>(seq.checksum),
                 static_cast<unsigned long long>(seq_guard.checksum));
    return 1;
  }

  std::vector<Measurement> sweep_runs;
  Measurement thr_barrier;
  Measurement thr_channel;
  bool have_barrier = false;
  bool have_channel = false;
  for (const SyncMode mode : modes) {
    Measurement* top =
        mode == SyncMode::kChannel ? &thr_channel : &thr_barrier;
    bool* have = mode == SyncMode::kChannel ? &have_channel : &have_barrier;
    for (const std::int32_t t : sweep) {
      const Measurement m = measure(w, t, repeats, mode);
      std::fprintf(stderr, "[bench_pdes] threaded(%d, %s): %.0f events/s\n",
                   t, sync_mode_name(mode), m.events_per_sec);
      if (!agrees(m)) {
        std::fprintf(stderr,
                     "[bench_pdes] ERROR: executors disagree at %d threads "
                     "(%s sync, checksum %llu vs %llu)\n",
                     t, sync_mode_name(mode),
                     static_cast<unsigned long long>(seq.checksum),
                     static_cast<unsigned long long>(m.checksum));
        return 1;
      }
      sweep_runs.push_back(m);
      if (t == threads) {
        *top = m;
        *have = true;
      }
    }
    if (!*have) {
      *top = measure(w, threads, repeats, mode);
      std::fprintf(stderr, "[bench_pdes] threaded(%d, %s): %.0f events/s\n",
                   threads, sync_mode_name(mode), top->events_per_sec);
      if (!agrees(*top)) {
        std::fprintf(stderr,
                     "[bench_pdes] ERROR: executors disagree (%s sync, "
                     "checksum %llu vs %llu)\n",
                     sync_mode_name(mode),
                     static_cast<unsigned long long>(seq.checksum),
                     static_cast<unsigned long long>(top->checksum));
        return 1;
      }
      *have = true;
    }
  }

  obs::Registry shard_registry;
  ShardMeasurement sharded;
  const bool have_sharded = shards >= 2;
  if (have_sharded) {
    try {
      sharded = measure_sharded(w, shards, repeats, &shard_registry);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "[bench_pdes] ERROR: sharded run failed: %s\n",
                   e.what());
      return 1;
    }
    std::fprintf(stderr,
                 "[bench_pdes] sharded(%d): %.0f events/s "
                 "(%llu cross-shard events, ring_wait_share %.3f)\n",
                 sharded.shards, sharded.events_per_sec,
                 static_cast<unsigned long long>(
                     sharded.result.metrics.cross_shard_events),
                 sharded.ring_wait_share);
    if (seq.checksum != sharded.result.checksum ||
        seq.stats.total_events != sharded.result.stats.total_events) {
      std::fprintf(stderr,
                   "[bench_pdes] ERROR: sharded executor disagrees "
                   "(checksum %llu vs %llu)\n",
                   static_cast<unsigned long long>(seq.checksum),
                   static_cast<unsigned long long>(sharded.result.checksum));
      return 1;
    }
  }

  const auto speedup = [&seq](const Measurement& m) {
    return m.events_per_sec > 0 && seq.events_per_sec > 0
               ? m.events_per_sec / seq.events_per_sec
               : 0;
  };

  using obs::format_double;
  std::string json = "{\n  \"schema\": \"massf.bench_pdes.v2\",\n";
  json += "  \"config\": {\"lps\": " + std::to_string(w.lps) +
          ", \"chain\": " + std::to_string(w.chain) +
          ", \"hops\": " + std::to_string(w.hops) +
          ", \"lookahead_ms\": 1, \"repeats\": " + std::to_string(repeats) +
          ", \"host_cpus\": " +
          std::to_string(std::thread::hardware_concurrency()) + "},\n";
  json += executor_json("sequential", seq) + ",\n";
  json += executor_json("sequential_guard", seq_guard) + ",\n";
  if (have_barrier) json += executor_json("threaded", thr_barrier) + ",\n";
  if (have_channel) {
    json += executor_json("threaded_channel", thr_channel) + ",\n";
  }
  if (have_sharded) {
    json += "  \"sharded\": " + shard_measurement_json(sharded) + ",\n";
  }
  json += "  \"sweep\": [";
  for (std::size_t i = 0; i < sweep_runs.size(); ++i) {
    json += i == 0 ? "\n    " : ",\n    ";
    json += measurement_json(sweep_runs[i], "    ");
  }
  json += sweep_runs.empty() ? "],\n" : "\n  ],\n";
  if (have_barrier) {
    json += "  \"speedup\": " + format_double(speedup(thr_barrier)) + ",\n";
  }
  if (have_channel) {
    json += "  \"speedup_channel\": " + format_double(speedup(thr_channel)) +
            ",\n";
  }
  // Trailing comma cleanup: replace the final ",\n" with "\n}\n".
  json.erase(json.size() - 2);
  json += "\n}\n";

  if (!obs::write_file(out_path, json)) {
    std::fprintf(stderr, "[bench_pdes] failed to write %s\n",
                 out_path.c_str());
    return 1;
  }
  std::fprintf(stderr, "[bench_pdes] wrote %s\n", out_path.c_str());
  std::fputs(json.c_str(), stdout);
  return 0;
}
