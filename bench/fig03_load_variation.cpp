// Reproduces paper Figure 3: load variation over the lifetime of the
// simulation. Runs the single-AS ScaLapack scenario under the HPROF mapping
// with per-engine load tracing enabled and prints, per virtual-time bin,
// the min / mean / max / stddev of the per-engine event counts — the spread
// the paper's chart visualizes (the load on each physical node varies
// greatly over time).
#include <algorithm>
#include <cstdio>

#include "common.hpp"
#include "util/stats.hpp"

int main() {
  using namespace massf;
  using namespace massf::bench;

  ScenarioOptions opts =
      experiment_options(/*multi_as=*/false, AppKind::kScaLapack);
  opts.load_bin = milliseconds(250);
  Scenario scenario(opts);
  const ExperimentResult r = scenario.run(MappingKind::kHProf);

  std::printf("# Figure 3: Load Variation over the Lifetime of Simulation\n");
  std::printf(
      "# per %.0f ms virtual-time bin: per-engine kernel events\n"
      "# time_s\tmin\tmean\tmax\tstddev\n",
      to_milliseconds(opts.load_bin));

  std::size_t max_bins = 0;
  for (const TimeSeries& ts : r.stats.lp_load) {
    max_bins = std::max(max_bins, ts.num_bins());
  }
  for (std::size_t bin = 0; bin < max_bins; ++bin) {
    Accumulator acc;
    for (const TimeSeries& ts : r.stats.lp_load) {
      acc.add(bin < ts.num_bins() ? ts.bin(bin) : 0.0);
    }
    std::printf("%.2f\t%.0f\t%.1f\t%.0f\t%.1f\n",
                static_cast<double>(bin) * to_seconds(opts.load_bin),
                acc.min(), acc.mean(), acc.max(), acc.stddev());
  }
  return 0;
}
