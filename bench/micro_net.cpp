// Microbenchmark for the packet-level layer: end-to-end simulated packet
// throughput (events/second of wall clock) through NetSim including
// forwarding lookups, queue model, and TCP processing — the constant that
// determines how much virtual time per second of wall clock the simulator
// delivers.
#include <benchmark/benchmark.h>

#include <memory>

#include "net/netsim.hpp"
#include "routing/forwarding.hpp"
#include "topology/brite.hpp"

namespace {

using namespace massf;

void BM_NetSimTcpThroughput(benchmark::State& state) {
  BriteOptions o;
  o.num_routers = static_cast<std::int32_t>(state.range(0));
  o.num_hosts = 64;
  o.seed = 5;
  const Network net = generate_flat(o);
  std::vector<NodeId> dests;
  for (NodeId h = net.num_routers; h < static_cast<NodeId>(net.nodes.size());
       ++h) {
    dests.push_back(net.nodes[static_cast<std::size_t>(h)].attach_router);
  }
  const ForwardingPlane fp = ForwardingPlane::build_flat(net, dests);
  const std::vector<LpId> map(static_cast<std::size_t>(net.num_routers), 0);

  std::uint64_t events = 0;
  for (auto _ : state) {
    EngineOptions eo;
    eo.lookahead = milliseconds(1);
    eo.end_time = seconds(3600);
    Engine engine(eo);
    NetSim sim(net, fp, map, engine, NetSimOptions{});
    for (int i = 0; i < 32; ++i) {
      sim.start_flow(engine, milliseconds(1 + i),
                     net.num_routers + i,
                     net.num_routers + 32 + (i % 32), 500000,
                     static_cast<std::uint32_t>(i));
    }
    const RunStats stats = engine.run();
    events += stats.total_events;
    benchmark::DoNotOptimize(stats.total_events);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.SetLabel(std::to_string(o.num_routers) + " routers");
}
BENCHMARK(BM_NetSimTcpThroughput)->Arg(200)->Arg(2000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
