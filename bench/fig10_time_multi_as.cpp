// Reproduces paper Figure 10: application simulation time on the multi-AS
// (BGP-routed) network. Expected shape: PROF2 < TOP2 (~21% in the paper),
// HPROF lowest (~41% below flat); GridNPB gains smaller than ScaLapack
// (less communication).
#include "common.hpp"

int main() {
  using namespace massf;
  using namespace massf::bench;
  const auto entries = run_matrix(/*multi_as=*/true, kApps, kMainKinds);
  print_figure("Figure 10: Simulation Time on Multi-AS", "sec", entries,
               [](const ExperimentResult& r) {
                 return r.metrics.simulation_time_s;
               });
  return 0;
}
