// Reproduces paper Figure 8: load imbalance (normalized stddev of
// per-engine event rates) on the single-AS network. Expected shape: PROF2
// below TOP2, HPROF below HTOP (profiles predict load better than
// bandwidth).
#include "common.hpp"

int main() {
  using namespace massf;
  using namespace massf::bench;
  const auto entries = run_matrix(/*multi_as=*/false, kApps, kMainKinds);
  print_figure("Figure 8: Load Imbalance on Single-AS", "normalized stddev",
               entries, [](const ExperimentResult& r) {
                 return r.metrics.load_imbalance;
               });
  return 0;
}
