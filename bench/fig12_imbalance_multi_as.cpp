// Reproduces paper Figure 12: load imbalance on the multi-AS network.
// Expected shape: larger imbalance than single-AS (BGP decouples traffic
// from topology), PROF2 below TOP2 (~15%), HPROF below HTOP (~31%) — the
// profile advantage grows on multi-AS networks.
#include "common.hpp"

int main() {
  using namespace massf;
  using namespace massf::bench;
  const auto entries = run_matrix(/*multi_as=*/true, kApps, kMainKinds);
  print_figure("Figure 12: Load Imbalance on Multi-AS", "normalized stddev",
               entries, [](const ExperimentResult& r) {
                 return r.metrics.load_imbalance;
               });
  return 0;
}
