// Ablation: scalability with engine-node count. The paper fixes 90 engine
// nodes; this sweep varies N and reports simulation time, achieved MLL,
// and parallel efficiency for HPROF vs TOP2 — showing how the
// synchronization cost C(N) erodes flat mappings faster than hierarchical
// ones as the cluster grows (the regime where HPROF matters most).
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace massf;
  using namespace massf::bench;

  std::printf("# Ablation: engine-count scaling (single-AS, ScaLapack)\n");
  std::printf("# engines\tmapping\tT_sec\tMLL_ms\timbalance\tPE\n");
  for (const std::int32_t engines : {8, 16, 24, 48, 90}) {
    ScenarioOptions o =
        experiment_options(/*multi_as=*/false, AppKind::kScaLapack);
    o.num_engines = engines;
    Scenario scenario(o);
    for (const MappingKind kind :
         {MappingKind::kHProf, MappingKind::kTop2}) {
      std::fprintf(stderr, "[bench] N=%d %s...\n", engines,
                   mapping_kind_name(kind));
      const ExperimentResult r = scenario.run(kind);
      std::printf("%d\t%s\t%.4f\t%.3f\t%.4f\t%.4f\n", engines,
                  mapping_kind_name(kind), r.metrics.simulation_time_s,
                  to_milliseconds(r.mapping.achieved_mll),
                  r.metrics.load_imbalance, r.metrics.parallel_efficiency);
    }
  }
  return 0;
}
