// Shared driver for the figure-reproduction benches: builds the paper's
// evaluation matrix ({ScaLapack, GridNPB} x mapping approaches) at either
// the default reduced scale or, with MASSF_FULL=1, the paper's full scale
// (20,000 routers, 90 engine nodes).
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "sim/report.hpp"
#include "sim/scenario.hpp"

namespace massf::bench {

/// Scenario options for one side of the evaluation (single- or multi-AS)
/// and one application, honoring MASSF_FULL.
ScenarioOptions experiment_options(bool multi_as, AppKind app);

/// Path from MASSF_METRICS (null when unset). When set, run_matrix attaches
/// a metrics registry to every measured run and writes the aggregate as
/// massf.metrics.v1 JSON to this path on completion.
const char* metrics_export_path();

struct MatrixEntry {
  AppKind app;
  MappingKind kind;
  ExperimentResult result;
};

/// Runs every (application, mapping) combination. One Scenario per
/// application (network and profile shared across mappings, as in the
/// paper's method). Prints progress to stderr.
std::vector<MatrixEntry> run_matrix(bool multi_as,
                                    std::span<const AppKind> apps,
                                    std::span<const MappingKind> kinds);

/// Prints one figure block extracting `select` from each entry.
void print_figure(const std::string& title, const std::string& unit,
                  std::span<const MatrixEntry> entries,
                  const std::function<double(const ExperimentResult&)>& select);

/// The mapping sets used by the paper's figures.
inline constexpr MappingKind kMainKinds[] = {
    MappingKind::kHProf, MappingKind::kProf2, MappingKind::kHTop,
    MappingKind::kTop2};
/// Figures 7 and 11 additionally show the untuned TOP and PROF.
inline constexpr MappingKind kAllKinds[] = {
    MappingKind::kHProf, MappingKind::kProf2, MappingKind::kHTop,
    MappingKind::kTop2, MappingKind::kProf, MappingKind::kTop};
inline constexpr AppKind kApps[] = {AppKind::kScaLapack, AppKind::kGridNpb};

}  // namespace massf::bench
