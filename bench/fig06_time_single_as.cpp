// Reproduces paper Figure 6: application simulation time on the single-AS
// network for {ScaLapack, GridNPB} x {HPROF, PROF2, HTOP, TOP2}.
// Expected shape: PROF2 < TOP2 (profiles help), HPROF lowest (~40% below
// the flat mappings for ScaLapack).
#include "common.hpp"

int main() {
  using namespace massf;
  using namespace massf::bench;
  const auto entries = run_matrix(/*multi_as=*/false, kApps, kMainKinds);
  print_figure("Figure 6: Simulation Time on Single-AS", "sec", entries,
               [](const ExperimentResult& r) {
                 return r.metrics.simulation_time_s;
               });
  return 0;
}
