// Microbenchmarks for the routing substrate: per-destination reverse-SPT
// computation (what makes 20k-router tables feasible) and the BGP policy
// fixed-point solve.
#include <benchmark/benchmark.h>

#include <numeric>

#include "routing/bgp.hpp"
#include "routing/ospf.hpp"
#include "topology/brite.hpp"
#include "topology/mabrite.hpp"

namespace {

using namespace massf;

void BM_OspfPerDestination(benchmark::State& state) {
  BriteOptions o;
  o.num_routers = static_cast<std::int32_t>(state.range(0));
  o.num_hosts = 10;
  o.seed = 9;
  const Network net = generate_flat(o);
  std::vector<NodeId> members(static_cast<std::size_t>(net.num_routers));
  std::iota(members.begin(), members.end(), NodeId{0});
  NodeId dest = 0;
  for (auto _ : state) {
    OspfDomain ospf(net, members, true);
    ospf.add_destination(net, dest);
    dest = (dest + 1) % net.num_routers;
    benchmark::DoNotOptimize(ospf.num_destinations());
  }
  state.SetLabel(std::to_string(o.num_routers) + " routers");
}
BENCHMARK(BM_OspfPerDestination)->Arg(2000)->Arg(20000)
    ->Unit(benchmark::kMillisecond);

void BM_BgpSolve(benchmark::State& state) {
  MaBriteOptions o;
  o.num_as = static_cast<std::int32_t>(state.range(0));
  o.routers_per_as = 4;
  o.num_hosts = 10;
  o.seed = 9;
  const Network net = generate_multi_as(o);
  for (auto _ : state) {
    BgpSolver bgp(net.num_as(), net.as_adjacency);
    bgp.solve();
    benchmark::DoNotOptimize(bgp.iterations());
  }
  state.SetLabel(std::to_string(o.num_as) + " ASes");
}
BENCHMARK(BM_BgpSolve)->Arg(20)->Arg(100)->Arg(300)
    ->Unit(benchmark::kMillisecond);

void BM_TopologyGeneration(benchmark::State& state) {
  BriteOptions o;
  o.num_routers = static_cast<std::int32_t>(state.range(0));
  o.num_hosts = o.num_routers / 2;
  for (auto _ : state) {
    o.seed += 1;
    const Network net = generate_flat(o);
    benchmark::DoNotOptimize(net.links.size());
  }
}
BENCHMARK(BM_TopologyGeneration)->Arg(2000)->Arg(20000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
