// Ablation: mapping baselines beyond the paper's main matrix — the
// ModelNet-style greedy k-cluster (paper Section 6) and the
// topology+placement mapping (PLACE, from the authors' earlier work) —
// against TOP2 and HPROF on the single-AS network, all four paper metrics.
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace massf;
  using namespace massf::bench;

  ScenarioOptions o =
      experiment_options(/*multi_as=*/false, AppKind::kScaLapack);
  Scenario scenario(o);

  std::printf("# Ablation: baseline mappings (single-AS, ScaLapack, %d"
              " engines)\n",
              o.num_engines);
  std::printf("# mapping\tT_sec\tMLL_ms\timbalance\tPE\n");
  for (const MappingKind kind :
       {MappingKind::kGreedy, MappingKind::kTop, MappingKind::kPlace,
        MappingKind::kTop2, MappingKind::kHProf}) {
    std::fprintf(stderr, "[bench] baseline %s...\n",
                 mapping_kind_name(kind));
    const ExperimentResult r = scenario.run(kind);
    std::printf("%s\t%.4f\t%.3f\t%.4f\t%.4f\n", mapping_kind_name(kind),
                r.metrics.simulation_time_s,
                to_milliseconds(r.mapping.achieved_mll),
                r.metrics.load_imbalance, r.metrics.parallel_efficiency);
  }
  return 0;
}
