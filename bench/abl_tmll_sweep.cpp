// Ablation: the Tmll sweep at the heart of HPROF (paper Section 3.4.3).
// For each candidate threshold, prints the contracted-graph size, the
// achieved MLL, and the evaluator terms Es, Ec, E — exposing the
// parallelism-vs-decoupling tradeoff the evaluator navigates, and where the
// chosen threshold falls.
#include <algorithm>
#include <cstdio>
#include <limits>
#include <numeric>

#include "common.hpp"
#include "graph/union_find.hpp"
#include "lb/graph_prep.hpp"
#include "partition/partition.hpp"

int main() {
  using namespace massf;
  using namespace massf::bench;

  ScenarioOptions sopts =
      experiment_options(/*multi_as=*/false, AppKind::kNone);
  Scenario scenario(sopts);
  const Network& net = scenario.network();

  MappingOptions mopts;
  mopts.num_engines = sopts.num_engines;
  mopts.cluster.num_engine_nodes = sopts.num_engines;
  std::vector<std::int64_t> lats;
  const Graph g =
      prepare_graph(net, MappingKind::kTop, nullptr, mopts, &lats);
  const SimTime sync = mopts.cluster.sync_cost_time(mopts.num_engines);

  std::printf("# Ablation: HPROF Tmll sweep (%d routers, %d engines,"
              " sync=%.3f ms)\n",
              net.num_routers, mopts.num_engines, to_milliseconds(sync));
  std::printf("# tmll_ms\tclusters\tachieved_mll_ms\tEs\tEc\tE\tedge_cut\n");

  std::vector<EdgeId> order(static_cast<std::size_t>(g.num_edges()));
  std::iota(order.begin(), order.end(), EdgeId{0});
  std::sort(order.begin(), order.end(), [&](EdgeId a, EdgeId b) {
    return lats[static_cast<std::size_t>(a)] < lats[static_cast<std::size_t>(b)];
  });

  UnionFind uf(g.num_vertices());
  std::size_t cursor = 0;
  for (SimTime tmll = (sync / mopts.tmll_step + 1) * mopts.tmll_step;
       tmll <= milliseconds(6); tmll += mopts.tmll_step) {
    while (cursor < order.size() &&
           lats[static_cast<std::size_t>(order[cursor])] < tmll) {
      const EdgeId e = order[cursor++];
      uf.unite(g.edge_u(e), g.edge_v(e));
    }
    if (uf.num_sets() < mopts.num_engines) break;
    const auto cluster = uf.compress();
    std::vector<EdgeId> origin;
    const Graph dumped = contract(g, cluster, uf.num_sets(), lats, &origin);
    std::vector<std::int64_t> dlat(origin.size());
    for (std::size_t i = 0; i < origin.size(); ++i) {
      dlat[i] = lats[static_cast<std::size_t>(origin[i])];
    }
    PartitionOptions popt;
    popt.num_parts = mopts.num_engines;
    const PartitionResult pr = partition_graph(dumped, popt);
    SimTime mll = min_cut_edge_aux(dumped, pr.part, dlat);
    if (mll == std::numeric_limits<std::int64_t>::max()) mll = tmll;
    const PartitionScore s = score_partition(mll, sync, pr.part_weights);
    std::printf("%.2f\t%d\t%.3f\t%.3f\t%.3f\t%.3f\t%lld\n",
                to_milliseconds(tmll), dumped.num_vertices(),
                to_milliseconds(mll), s.es, s.ec, s.e,
                static_cast<long long>(pr.edge_cut));
  }
  return 0;
}
