// Hybrid-fidelity benchmark: the packet model vs the fluid fast path on
// the same fig06-shaped flat topology (BRITE preferential attachment)
// carrying the same background-flow workload (traffic/background.hpp) plus
// a small packet-level HTTP foreground that exercises the flow<->packet
// coupling at shared links.
//
// Two questions, one report:
//
//   * Fidelity: at the base scale, how far do the hybrid run's aggregate
//     flow statistics (mean duration, mean goodput, completion count)
//     drift from the packet-level reference? (Paper-fidelity packet TCP is
//     the ground truth; the fluid model trades its slow-start/RTT detail
//     for event volume.)
//   * Scale: how many more background sources can the hybrid model carry
//     at the packet run's event budget? Events are what the modeled wall
//     clock charges (cost_per_event x max-LP), so events-at-equal-budget
//     is the machine-independent form of "simulated hosts at equal wall
//     clock"; measured wall times ride along for context.
//
// Output (--out): massf.bench_hybrid.v1 JSON, gated in nightly CI by
// scripts/check_bench.py (host-scale floor and fidelity-error ceiling).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "net/netsim.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "routing/forwarding.hpp"
#include "topology/brite.hpp"
#include "traffic/background.hpp"
#include "traffic/http.hpp"
#include "traffic/manager.hpp"
#include "util/flags.hpp"

namespace massf {
namespace {

struct Scale {
  std::int32_t routers = 200;
  std::int32_t servers = 40;
  std::int32_t clients = 10;        ///< packet HTTP foreground
  std::int32_t base_sources = 50;   ///< background sources at multiplier 1
  std::vector<std::int32_t> multipliers = {1, 10, 30};
  SimTime end = seconds(10);
  double mean_bytes = 1e6;
  double think_s = 5.0;
  std::uint64_t seed = 42;
};

struct Endpoints {
  std::vector<NodeId> servers;
  std::vector<NodeId> clients;
  std::vector<NodeId> sources;  ///< the full pool; runs use a prefix
};

struct BenchRun {
  const char* fidelity;
  std::int32_t sources;
  double wall_s = 0;
  std::uint64_t events = 0;
  std::uint64_t windows = 0;
  double modeled_wall_s = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  double mean_duration_s = 0;
  double mean_goodput_bps = 0;
};

BenchRun run_once(const Scale& s, const Network& net,
                  const ForwardingPlane& fp, const Endpoints& ep,
                  LinkModelKind kind, std::int32_t num_sources) {
  EngineOptions eo;
  eo.lookahead = milliseconds(1);
  eo.end_time = s.end;
  Engine engine(eo);

  NetSimOptions no;
  no.collect_flow_records = true;
  no.link_model.kind = kind;
  // Per-flow ceiling calibrated to the packet model: Reno with a 64 KB
  // ssthresh on these RTTs sustains ~window/RTT ~ 10 Mbps per flow, so
  // uncapped fluid flows would finish ~10x too fast on idle links.
  no.link_model.fluid_flow_rate_cap_bps = 1e7;
  const std::vector<LpId> router_lp(static_cast<std::size_t>(net.num_routers),
                                    0);
  NetSim sim(net, fp, router_lp, engine, no);

  TrafficManager manager(sim);
  BackgroundOptions bg;
  bg.think_time_mean_s = s.think_s;
  bg.flow_mean_bytes = s.mean_bytes;
  bg.flow_fidelity = true;  // fluid under kHybrid, packet TCP under kPacket
  bg.seed = s.seed ^ 0x42474644;
  const std::vector<NodeId> sources(ep.sources.begin(),
                                    ep.sources.begin() + num_sources);
  manager.add(TrafficKind::kBackground, std::make_unique<BackgroundWorkload>(
                                            sources, ep.servers, bg));
  HttpOptions http;
  http.seed = s.seed ^ 0x48545450;
  manager.add(TrafficKind::kHttp, std::make_unique<HttpWorkload>(
                                      ep.clients, ep.servers, http));
  manager.start(engine, sim);

  const auto t0 = std::chrono::steady_clock::now();
  const RunStats stats = engine.run();
  const auto t1 = std::chrono::steady_clock::now();

  BenchRun r;
  r.fidelity = kind == LinkModelKind::kHybrid ? "hybrid" : "packet";
  r.sources = num_sources;
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  r.events = stats.total_events;
  r.windows = stats.num_windows;
  r.modeled_wall_s = stats.modeled_wall_s;
  double dur_sum = 0;
  double gp_sum = 0;
  for (const FlowRecord& rec : sim.flow_records()) {
    if (tag_kind(rec.tag) != TrafficKind::kBackground) continue;
    if (rec.failed) {
      ++r.failed;
      continue;
    }
    ++r.completed;
    dur_sum += rec.duration_s();
    gp_sum += rec.goodput_bps();
  }
  if (r.completed > 0) {
    r.mean_duration_s = dur_sum / static_cast<double>(r.completed);
    r.mean_goodput_bps = gp_sum / static_cast<double>(r.completed);
  }
  return r;
}

double rel_err(double value, double reference) {
  return reference > 0 ? std::abs(value - reference) / reference : 0.0;
}

std::string run_json(const BenchRun& r) {
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "    {\"fidelity\": \"%s\", \"sources\": %d, \"wall_s\": %s, "
      "\"events\": %llu, \"windows\": %llu, \"modeled_wall_s\": %s,\n"
      "     \"completed\": %llu, \"failed\": %llu, \"mean_duration_s\": %s, "
      "\"mean_goodput_bps\": %s}",
      r.fidelity, r.sources, obs::format_double(r.wall_s).c_str(),
      static_cast<unsigned long long>(r.events),
      static_cast<unsigned long long>(r.windows),
      obs::format_double(r.modeled_wall_s).c_str(),
      static_cast<unsigned long long>(r.completed),
      static_cast<unsigned long long>(r.failed),
      obs::format_double(r.mean_duration_s).c_str(),
      obs::format_double(r.mean_goodput_bps).c_str());
  return buf;
}

}  // namespace
}  // namespace massf

int main(int argc, char** argv) {
  using namespace massf;

  FlagTable flags("bench_hybrid",
                  "Packet vs hybrid link-model host-count sweep and "
                  "fidelity comparison; emits massf.bench_hybrid.v1 JSON.");
  flags.add_string("out", "bench_hybrid.json", "JSON report path");
  flags.add_bool("smoke", false, "reduced scale for the test tier");
  flags.parse_or_exit(argc, argv);

  Scale s;
  if (flags.get_bool("smoke")) {
    s.routers = 60;
    s.servers = 8;
    s.clients = 4;
    s.base_sources = 8;
    s.multipliers = {1, 10};
    s.end = seconds(3);
  }

  const std::int32_t max_mult =
      *std::max_element(s.multipliers.begin(), s.multipliers.end());
  const std::int32_t num_hosts =
      s.servers + s.clients + s.base_sources * max_mult;

  BriteOptions bo;
  bo.num_routers = s.routers;
  bo.num_hosts = num_hosts;
  bo.seed = s.seed;
  const Network net = generate_flat(bo);

  Endpoints ep;
  for (NodeId h = net.num_routers;
       h < net.num_routers + static_cast<NodeId>(num_hosts); ++h) {
    if (static_cast<std::int32_t>(ep.servers.size()) < s.servers) {
      ep.servers.push_back(h);
    } else if (static_cast<std::int32_t>(ep.clients.size()) < s.clients) {
      ep.clients.push_back(h);
    } else {
      ep.sources.push_back(h);
    }
  }
  std::vector<NodeId> dests;
  for (const auto* group : {&ep.servers, &ep.clients, &ep.sources}) {
    for (const NodeId h : *group) {
      dests.push_back(net.nodes[static_cast<std::size_t>(h)].attach_router);
    }
  }
  std::sort(dests.begin(), dests.end());
  dests.erase(std::unique(dests.begin(), dests.end()), dests.end());
  const ForwardingPlane fp = ForwardingPlane::build_flat(net, dests);

  // Base-scale fidelity pair: same workload, both models.
  std::fprintf(stderr, "[bench_hybrid] packet reference (%d sources)...\n",
               s.base_sources);
  const BenchRun packet_base =
      run_once(s, net, fp, ep, LinkModelKind::kPacket, s.base_sources);
  std::vector<BenchRun> runs = {packet_base};
  for (const std::int32_t m : s.multipliers) {
    std::fprintf(stderr, "[bench_hybrid] hybrid at %dx (%d sources)...\n", m,
                 s.base_sources * m);
    runs.push_back(run_once(s, net, fp, ep, LinkModelKind::kHybrid,
                            s.base_sources * m));
  }
  const BenchRun& hybrid_base = runs[1];

  // Host scale at equal event budget: the largest swept multiplier whose
  // hybrid run stays within the packet reference's event count (events
  // drive the modeled wall clock: cost_per_event x max-LP per window).
  std::int32_t host_scale = 0;
  for (std::size_t i = 0; i < s.multipliers.size(); ++i) {
    if (runs[i + 1].events <= packet_base.events) {
      host_scale = s.multipliers[i];
    }
  }
  const double duration_err =
      rel_err(hybrid_base.mean_duration_s, packet_base.mean_duration_s);
  const double goodput_err =
      rel_err(hybrid_base.mean_goodput_bps, packet_base.mean_goodput_bps);
  const double completed_err =
      rel_err(static_cast<double>(hybrid_base.completed),
              static_cast<double>(packet_base.completed));
  const double event_ratio =
      hybrid_base.events > 0 ? static_cast<double>(packet_base.events) /
                                   static_cast<double>(hybrid_base.events)
                             : 0.0;

  for (const BenchRun& r : runs) {
    std::printf("%-6s sources=%5d  events=%10llu  wall=%7.3f s  "
                "completed=%6llu  mean_dur=%.3f s\n",
                r.fidelity, r.sources,
                static_cast<unsigned long long>(r.events), r.wall_s,
                static_cast<unsigned long long>(r.completed),
                r.mean_duration_s);
  }
  std::printf("host_scale(equal events) = %dx   event_ratio = %.1fx\n",
              host_scale, event_ratio);
  std::printf("fidelity err: duration %.3f  goodput %.3f  completed %.3f\n",
              duration_err, goodput_err, completed_err);

  std::string json = "{\n  \"schema\": \"massf.bench_hybrid.v1\",\n";
  char head[512];
  std::snprintf(
      head, sizeof head,
      "  \"base_sources\": %d,\n"
      "  \"host_scale\": %d,\n"
      "  \"event_ratio\": %s,\n"
      "  \"duration_err\": %s,\n"
      "  \"goodput_err\": %s,\n"
      "  \"completed_err\": %s,\n"
      "  \"runs\": [\n",
      s.base_sources, host_scale, obs::format_double(event_ratio).c_str(),
      obs::format_double(duration_err).c_str(),
      obs::format_double(goodput_err).c_str(),
      obs::format_double(completed_err).c_str());
  json += head;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    json += run_json(runs[i]);
    json += i + 1 < runs.size() ? ",\n" : "\n";
  }
  json += "  ]\n}\n";

  const std::string out = flags.get_string("out");
  if (!obs::write_file(out, json)) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::fprintf(stderr, "[bench_hybrid] wrote %s\n", out.c_str());
  return 0;
}
