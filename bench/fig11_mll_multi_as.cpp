// Reproduces paper Figure 11: achieved MLL on the multi-AS network,
// including untuned TOP and PROF. Expected shape: hierarchical approaches
// up to ~10x the flat MLLs.
#include "common.hpp"

int main() {
  using namespace massf;
  using namespace massf::bench;
  const auto entries = run_matrix(/*multi_as=*/true, kApps, kAllKinds);
  print_figure("Figure 11: Achieved MLL on Multi-AS", "ms", entries,
               [](const ExperimentResult& r) {
                 return to_milliseconds(r.mapping.achieved_mll);
               });
  return 0;
}
