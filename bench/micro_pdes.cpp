// Microbenchmarks for the conservative engine: raw event throughput, the
// quantity behind the per-event cost calibration in the cluster model.
#include <benchmark/benchmark.h>

#include <memory>

#include "pdes/engine.hpp"

namespace {

using namespace massf;

// Each handled event schedules the next one (self-chain), so the run
// measures steady-state queue push/pop + dispatch.
class ChainLp final : public LogicalProcess {
 public:
  explicit ChainLp(SimTime step) : step_(step) {}
  void handle(Engine& engine, const Event& ev) override {
    if (ev.a > 0) {
      engine.schedule(engine.current_lp(), ev.time + step_, 1, ev.a - 1);
    }
  }

 private:
  SimTime step_;
};

void BM_EventThroughputSingleLp(benchmark::State& state) {
  const std::uint64_t chain = 200000;
  for (auto _ : state) {
    EngineOptions o;
    o.lookahead = milliseconds(1);
    o.end_time = seconds(3600);
    Engine engine(o);
    engine.add_lp(std::make_unique<ChainLp>(microseconds(10)));
    engine.schedule(0, 0, 1, chain);
    const RunStats stats = engine.run();
    benchmark::DoNotOptimize(stats.total_events);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(chain));
}
BENCHMARK(BM_EventThroughputSingleLp)->Unit(benchmark::kMillisecond);

void BM_EventThroughputManyLps(benchmark::State& state) {
  const auto lps = static_cast<std::int32_t>(state.range(0));
  const std::uint64_t chain = 20000;
  for (auto _ : state) {
    EngineOptions o;
    o.lookahead = milliseconds(1);
    o.end_time = seconds(3600);
    Engine engine(o);
    for (std::int32_t i = 0; i < lps; ++i) {
      engine.add_lp(std::make_unique<ChainLp>(microseconds(100)));
    }
    for (std::int32_t i = 0; i < lps; ++i) engine.schedule(i, 0, 1, chain);
    const RunStats stats = engine.run();
    benchmark::DoNotOptimize(stats.total_events);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(chain) * lps);
}
BENCHMARK(BM_EventThroughputManyLps)->Arg(4)->Arg(32)->Arg(90)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
