// Imbalance-ramp benchmark: online rebalancing vs a static HPROF mapping
// on a phase-shifting workload (the paper's Figure 8 scenario, pushed past
// what any static mapping can handle — see EXPERIMENTS.md).
//
// Topology: a ring of K pods. Each pod is one gateway router (with hosts
// attached) followed by a chain of host-free transit routers; the chain
// ends at the next pod's gateway, closing the ring. Every router-router
// link has the same latency, so (a) the lookahead never shrinks when a
// transit router changes engines and (b) every transit router is mobile
// (no hosts, all incident links >= lookahead).
//
// Workload: a constant light background plus a heavy CBR stream whose
// source pod rotates every phase. The profiling run only sees phase 0, so
// the static HPROF mapping is tuned to a hot sector that moves away after
// the first phase — per-engine load imbalance ramps, and modeled wall
// clock (per window: max LP busy + sync) inflates. The rebalance
// controller migrates transit routers at window boundaries to follow the
// hot sector, paying the modeled migration cost.
//
// Output (--out): massf.bench_rebalance.v1 JSON — the static and
// rebalanced runs, the modeled-time improvement fraction, the
// sequential-vs-threaded full-signature equality of the rebalanced run,
// and the rebalanced run's full massf.metrics.v1 export (including the
// lb.rebalance.* block). Gated in CI by scripts/check_bench.py.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "cluster/metrics.hpp"
#include "lb/mapping.hpp"
#include "lb/profile.hpp"
#include "lb/rebalance.hpp"
#include "net/netsim.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "routing/forwarding.hpp"
#include "topology/network.hpp"
#include "util/flags.hpp"

namespace massf {
namespace {

struct Scale {
  std::int32_t pods = 8;
  std::int32_t transit_per_pod = 6;   ///< host-free (mobile) routers
  std::int32_t hosts_per_gateway = 4;
  std::int32_t engines = 4;
  std::int32_t threads = 4;
  std::int32_t phases = 8;
  SimTime phase_len = milliseconds(250);
  SimTime router_latency = microseconds(400);
  SimTime hot_interval = microseconds(500);   ///< hot CBR datagram spacing
  SimTime bg_interval = milliseconds(10);     ///< background spacing
};

std::int32_t pod_stride(const Scale& s) { return 1 + s.transit_per_pod; }
NodeId gateway(const Scale& s, std::int32_t pod) {
  return pod * pod_stride(s);
}

Network build_ring(const Scale& s) {
  Network net;
  net.num_routers = s.pods * pod_stride(s);
  net.nodes.assign(static_cast<std::size_t>(net.num_routers), NetNode{});

  const auto add_link = [&](NodeId a, NodeId b, SimTime latency,
                            double bw_bps) {
    NetLink l;
    l.a = a;
    l.b = b;
    l.latency = latency;
    l.bandwidth_bps = bw_bps;
    net.links.push_back(l);
  };

  // Gateway -> transit chain -> next gateway; uniform latency keeps every
  // transit router mobile whatever engine owns its neighbors.
  for (std::int32_t pod = 0; pod < s.pods; ++pod) {
    NodeId prev = gateway(s, pod);
    for (std::int32_t t = 0; t < s.transit_per_pod; ++t) {
      const NodeId transit = gateway(s, pod) + 1 + t;
      add_link(prev, transit, s.router_latency, 10e9);
      prev = transit;
    }
    add_link(prev, gateway(s, (pod + 1) % s.pods), s.router_latency, 10e9);
  }

  for (std::int32_t pod = 0; pod < s.pods; ++pod) {
    for (std::int32_t h = 0; h < s.hosts_per_gateway; ++h) {
      NetNode host;
      host.kind = NodeKind::kHost;
      host.attach_router = gateway(s, pod);
      net.nodes.push_back(host);
      add_link(static_cast<NodeId>(net.nodes.size()) - 1, gateway(s, pod),
               microseconds(20), 1e9);
    }
  }
  net.build_adjacency();
  const std::string problem = net.validate();
  MASSF_CHECK(problem.empty());
  return net;
}

NodeId host_of(const Network& net, const Scale& s, std::int32_t pod,
               std::int32_t h) {
  return net.num_routers + pod * s.hosts_per_gateway + h;
}

/// Pre-schedules the whole workload (CBR is deterministic; no RNG, no
/// callbacks — the benchmark isolates the load-balance story).
void schedule_traffic(const Scale& s, const Network& net, Engine& engine,
                      NetSim& sim) {
  const SimTime end = s.phases * s.phase_len;
  // Background: every host streams to its counterpart two pods over, all
  // run long — keeps every transit chain warm so profiles are never zero.
  for (std::int32_t pod = 0; pod < s.pods; ++pod) {
    for (std::int32_t h = 0; h < s.hosts_per_gateway; ++h) {
      const NodeId src = host_of(net, s, pod, h);
      const NodeId dst = host_of(net, s, (pod + 2) % s.pods, h);
      for (SimTime t = milliseconds(1) + h * microseconds(50); t < end;
           t += s.bg_interval) {
        sim.send_udp(engine, t, src, dst, 512, /*tag=*/0);
      }
    }
  }
  // The rotating hot sector: in phase p, pod p's hosts blast pod p+2 —
  // the two transit chains between them carry the stream. The profiling
  // run (phase 0 only) bakes phase 0's sector into the static mapping.
  for (std::int32_t p = 0; p < s.phases; ++p) {
    const std::int32_t src_pod = p % s.pods;
    const std::int32_t dst_pod = (src_pod + 2) % s.pods;
    const SimTime start = p * s.phase_len;
    for (std::int32_t h = 0; h < s.hosts_per_gateway; ++h) {
      const NodeId src = host_of(net, s, src_pod, h);
      const NodeId dst = host_of(net, s, dst_pod, h);
      for (SimTime t = start + h * microseconds(25);
           t < start + s.phase_len; t += s.hot_interval) {
        sim.send_udp(engine, t, src, dst, 1000, /*tag=*/1);
      }
    }
  }
}

struct RunResult {
  RunStats stats;
  SimulationMetrics metrics;
  RebalanceController::Totals rebalance;
  std::string metrics_json;  ///< massf.metrics.v1 (rebalanced runs only)
};

RunResult run_once(const Scale& s, const Network& net,
                   const ForwardingPlane& fp, const Mapping& mapping,
                   const RebalanceOptions& ropts, std::int32_t threads) {
  ClusterModel cluster;
  cluster.num_engine_nodes = s.engines;

  EngineOptions eo;
  eo.lookahead = s.router_latency;
  eo.cost_per_event_s = cluster.cost_per_event_s;
  eo.sync_cost_s = cluster.sync_cost_s();
  eo.end_time = s.phases * s.phase_len;
  Engine engine(eo);

  NetSimOptions no;
  no.collect_node_profile = true;
  NetSim sim(net, fp, mapping.router_lp, engine, no);
  schedule_traffic(s, net, engine, sim);

  std::unique_ptr<RebalanceController> rebalancer;
  obs::Registry registry;
  if (ropts.enabled) {
    rebalancer = std::make_unique<RebalanceController>(sim, cluster, ropts);
    rebalancer->arm(engine);
    engine.set_registry(&registry);  // engine publishes at end of run
  }

  RunResult r;
  r.stats = threads > 0 ? engine.run_threaded(threads) : engine.run();
  r.metrics = compute_metrics(r.stats, cluster);
  if (rebalancer != nullptr) {
    r.rebalance = rebalancer->totals();
    sim.publish_metrics(registry);
    rebalancer->publish_metrics(registry);
    r.metrics_json = obs::to_json(registry);
  }
  return r;
}

/// Strips the executor-identity fields (worker-count gauge, pdes.sync.*
/// protocol counters) from a massf.metrics.v1 export: they describe which
/// executor ran, not the simulation, and legitimately differ between the
/// sequential and threaded runs of the same workload.
std::string strip_executor_identity(std::string json) {
  for (const char* key : {"\"pdes.sched.threads\":", "\"pdes.sync."}) {
    for (auto pos = json.find(key); pos != std::string::npos;
         pos = json.find(key, pos)) {
      auto end = json.find_first_of(",}\n", pos + std::strlen(key));
      if (end == std::string::npos) end = json.size();
      json.erase(pos, end - pos);
    }
  }
  return json;
}

bool same_stats(const RunStats& a, const RunStats& b) {
  return a.total_events == b.total_events && a.num_windows == b.num_windows &&
         a.events_per_lp == b.events_per_lp && a.end_vtime == b.end_vtime &&
         a.modeled_wall_s == b.modeled_wall_s &&
         a.modeled_sync_s == b.modeled_sync_s &&
         a.modeled_migrate_s == b.modeled_migrate_s;
}

}  // namespace
}  // namespace massf

int main(int argc, char** argv) {
  using namespace massf;

  FlagTable flags("bench_rebalance",
                  "Online rebalancing vs static HPROF on a phase-shifting "
                  "workload; emits massf.bench_rebalance.v1 JSON.");
  flags.add_string("out", "bench_rebalance.json", "JSON report path");
  flags.add_bool("smoke", false, "reduced scale for the test tier");
  flags.add_int("threads", 4, "threaded-executor worker count",
                [](std::int64_t v) { return v >= 1 ? "" : "must be >= 1"; });
  flags.parse_or_exit(argc, argv);

  Scale s;
  s.threads = static_cast<std::int32_t>(flags.get_int("threads"));
  if (flags.get_bool("smoke")) {
    s.pods = 6;
    s.transit_per_pod = 4;
    s.phases = 4;
    s.phase_len = milliseconds(100);
  }

  const Network net = build_ring(s);
  std::vector<NodeId> dests;
  for (std::int32_t pod = 0; pod < s.pods; ++pod) {
    dests.push_back(gateway(s, pod));
  }
  const ForwardingPlane fp = ForwardingPlane::build_flat(net, dests);

  // Profiling run: naive mapping, phase 0 only — exactly the paper's PROF
  // procedure, and exactly why the static mapping goes stale.
  ClusterModel cluster;
  cluster.num_engine_nodes = s.engines;
  TrafficProfile profile;
  {
    const std::vector<LpId> naive = naive_mapping(net, s.engines);
    EngineOptions eo;
    eo.lookahead = s.router_latency;
    eo.cost_per_event_s = cluster.cost_per_event_s;
    eo.sync_cost_s = cluster.sync_cost_s();
    eo.end_time = s.phase_len;
    Engine engine(eo);
    NetSimOptions no;
    no.collect_node_profile = true;
    NetSim sim(net, fp, naive, engine, no);
    schedule_traffic(s, net, engine, sim);
    engine.run();
    profile = fold_profile(net, sim.node_profile());
  }

  MappingOptions mo;
  mo.kind = MappingKind::kHProf;
  mo.num_engines = s.engines;
  mo.cluster = cluster;
  const Mapping mapping = compute_mapping(net, mo, &profile);

  RebalanceOptions off;
  RebalanceOptions on;
  on.enabled = true;
  on.every_windows = 32;
  on.threshold = 1.15;
  on.sustain = 2;
  on.max_moves = 8;

  std::fprintf(stderr, "[bench_rebalance] static HPROF run...\n");
  const RunResult stat = run_once(s, net, fp, mapping, off, /*threads=*/0);
  std::fprintf(stderr, "[bench_rebalance] rebalanced run (sequential)...\n");
  const RunResult seq = run_once(s, net, fp, mapping, on, /*threads=*/0);
  std::fprintf(stderr, "[bench_rebalance] rebalanced run (%d threads)...\n",
               s.threads);
  const RunResult thr = run_once(s, net, fp, mapping, on, s.threads);

  const bool stats_equal = same_stats(seq.stats, thr.stats);
  const bool json_equal = strip_executor_identity(seq.metrics_json) ==
                          strip_executor_identity(thr.metrics_json);
  if (!stats_equal) {
    std::fprintf(stderr,
                 "stats mismatch: events %llu/%llu windows %llu/%llu "
                 "wall %.9f/%.9f migrate %.9f/%.9f end_vtime %lld/%lld\n",
                 static_cast<unsigned long long>(seq.stats.total_events),
                 static_cast<unsigned long long>(thr.stats.total_events),
                 static_cast<unsigned long long>(seq.stats.num_windows),
                 static_cast<unsigned long long>(thr.stats.num_windows),
                 seq.stats.modeled_wall_s, thr.stats.modeled_wall_s,
                 seq.stats.modeled_migrate_s, thr.stats.modeled_migrate_s,
                 static_cast<long long>(seq.stats.end_vtime),
                 static_cast<long long>(thr.stats.end_vtime));
    for (std::size_t i = 0; i < seq.stats.events_per_lp.size(); ++i) {
      if (seq.stats.events_per_lp[i] != thr.stats.events_per_lp[i]) {
        std::fprintf(
            stderr, "  lp %zu: %llu vs %llu\n", i,
            static_cast<unsigned long long>(seq.stats.events_per_lp[i]),
            static_cast<unsigned long long>(thr.stats.events_per_lp[i]));
      }
    }
  }
  if (!json_equal) {
    obs::write_file("/tmp/seq_metrics.json", seq.metrics_json);
    obs::write_file("/tmp/thr_metrics.json", thr.metrics_json);
    std::fprintf(stderr,
                 "metrics JSON mismatch (dumped /tmp/seq_metrics.json, "
                 "/tmp/thr_metrics.json)\n");
  }
  const bool equal = stats_equal && json_equal;
  const double improvement =
      (stat.stats.modeled_wall_s - seq.stats.modeled_wall_s) /
      stat.stats.modeled_wall_s;

  std::printf("static:     T=%8.3f s  imbalance=%.3f  events=%llu\n",
              stat.stats.modeled_wall_s, stat.metrics.load_imbalance,
              static_cast<unsigned long long>(stat.stats.total_events));
  std::printf("rebalanced: T=%8.3f s  imbalance=%.3f  events=%llu  "
              "(moves=%llu, migrate cost=%.4f s)\n",
              seq.stats.modeled_wall_s, seq.metrics.load_imbalance,
              static_cast<unsigned long long>(seq.stats.total_events),
              static_cast<unsigned long long>(seq.rebalance.moves),
              seq.stats.modeled_migrate_s);
  std::printf("improvement: %.1f%%  executors %s\n", improvement * 100,
              equal ? "bit-identical" : "DIFFER");

  char head[1024];
  std::snprintf(
      head, sizeof head,
      "{\n"
      "  \"schema\": \"massf.bench_rebalance.v1\",\n"
      "  \"static\": {\"modeled_time_s\": %s, \"imbalance\": %s, "
      "\"events\": %llu, \"windows\": %llu},\n"
      "  \"rebalanced\": {\"modeled_time_s\": %s, \"imbalance\": %s, "
      "\"events\": %llu, \"windows\": %llu,\n"
      "    \"moves\": %llu, \"events_moved\": %llu, \"bytes_moved\": %llu, "
      "\"triggers\": %llu,\n"
      "    \"imbalance_before\": %s, \"imbalance_after\": %s, "
      "\"modeled_migrate_s\": %s,\n"
      "    \"signature_equal\": %s},\n"
      "  \"improvement\": %s,\n",
      obs::format_double(stat.stats.modeled_wall_s).c_str(),
      obs::format_double(stat.metrics.load_imbalance).c_str(),
      static_cast<unsigned long long>(stat.stats.total_events),
      static_cast<unsigned long long>(stat.stats.num_windows),
      obs::format_double(seq.stats.modeled_wall_s).c_str(),
      obs::format_double(seq.metrics.load_imbalance).c_str(),
      static_cast<unsigned long long>(seq.stats.total_events),
      static_cast<unsigned long long>(seq.stats.num_windows),
      static_cast<unsigned long long>(seq.rebalance.moves),
      static_cast<unsigned long long>(seq.rebalance.events_moved),
      static_cast<unsigned long long>(seq.rebalance.bytes_moved),
      static_cast<unsigned long long>(seq.rebalance.triggers),
      obs::format_double(seq.rebalance.imbalance_before).c_str(),
      obs::format_double(seq.rebalance.imbalance_after).c_str(),
      obs::format_double(seq.stats.modeled_migrate_s).c_str(),
      equal ? "true" : "false",
      obs::format_double(improvement).c_str());
  std::string json = head;
  json += "  \"metrics\": " + seq.metrics_json + "\n}\n";
  const std::string out = flags.get_string("out");
  if (!obs::write_file(out, json)) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::fprintf(stderr, "[bench_rebalance] wrote %s\n", out.c_str());
  return equal ? 0 : 1;
}
