#include "common.hpp"

#include <cstdio>
#include <cstdlib>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "util/flags.hpp"

namespace massf::bench {

const char* metrics_export_path() { return std::getenv("MASSF_METRICS"); }

ScenarioOptions experiment_options(bool multi_as, AppKind app) {
  ScenarioOptions o;
  if (full_scale_requested()) {
    o = multi_as ? paper_full_scale_multi_as() : paper_full_scale_single_as();
    o.end_time = seconds(20);
    o.profile_end_time = seconds(5);
  } else {
    o.multi_as = multi_as;
    o.num_routers = 2000;
    o.num_hosts = 1000;
    o.num_as = 20;
    o.num_clients = 400;
    o.num_servers = 100;
    o.num_engines = 24;
    o.end_time = seconds(8);
    o.profile_end_time = seconds(3);
  }
  o.app = app;
  o.num_app_hosts = app == AppKind::kGridNpb ? 18 : 16;
  // Faster request cycle than the paper's 5 s so the shorter virtual runs
  // carry comparable background load (the paper's 30-minute runs are
  // compute-dominated per window; this keeps ours in the same regime).
  o.http.think_time_mean_s = 0.4;
  o.seed = 2004;
  return o;
}

std::vector<MatrixEntry> run_matrix(bool multi_as,
                                    std::span<const AppKind> apps,
                                    std::span<const MappingKind> kinds) {
  // With MASSF_METRICS=<path>, every measured run publishes into one shared
  // registry, written as massf.metrics.v1 JSON when the matrix finishes.
  const char* metrics_path = metrics_export_path();
  obs::Registry registry;

  // Nightly checkpoint phases: with MASSF_CKPT_DIR set and
  // MASSF_CKPT_PHASE=save, every measured run checkpoints every
  // MASSF_CKPT_EVERY windows (default 200) into a per-run file and stops at
  // the first write; with MASSF_CKPT_PHASE=resume, each run restores from
  // its file and runs to completion — the two-step nightly exercises the
  // full massf.ckpt.v1 round trip at figure scale.
  const char* ckpt_dir = std::getenv("MASSF_CKPT_DIR");
  const char* ckpt_phase_env = std::getenv("MASSF_CKPT_PHASE");
  const std::string ckpt_phase = ckpt_phase_env ? ckpt_phase_env : "";
  if (!ckpt_phase.empty() && ckpt_phase != "save" && ckpt_phase != "resume") {
    std::fprintf(stderr, "[bench] bad MASSF_CKPT_PHASE '%s' (save|resume)\n",
                 ckpt_phase.c_str());
    std::exit(2);
  }
  if (!ckpt_phase.empty() && ckpt_dir == nullptr) {
    std::fprintf(stderr, "[bench] MASSF_CKPT_PHASE requires MASSF_CKPT_DIR\n");
    std::exit(2);
  }
  const char* every_env = std::getenv("MASSF_CKPT_EVERY");
  const std::uint64_t ckpt_every =
      every_env ? std::strtoull(every_env, nullptr, 10) : 200;

  std::vector<MatrixEntry> entries;
  for (const AppKind app : apps) {
    ScenarioOptions options = experiment_options(multi_as, app);
    if (metrics_path != nullptr) options.registry = &registry;
    Scenario scenario(options);
    for (const MappingKind kind : kinds) {
      std::fprintf(stderr, "[bench] %s / %s / %s...\n",
                   multi_as ? "multi-AS" : "single-AS", app_kind_name(app),
                   mapping_kind_name(kind));
      if (!ckpt_phase.empty()) {
        const std::string file = std::string(ckpt_dir) + "/" +
                                 (multi_as ? "multi" : "single") + "_" +
                                 app_kind_name(app) + "_" +
                                 mapping_kind_name(kind) + ".ckpt";
        CkptOptions ck;
        if (ckpt_phase == "save") {
          ck.every_windows = ckpt_every;
          ck.path = file;
          ck.stop_after = true;
        } else {
          ck.restore_path = file;
        }
        scenario.set_ckpt(ck);
      }
      entries.push_back({app, kind, scenario.run(kind)});
    }
  }
  if (metrics_path != nullptr) {
    if (obs::write_file(metrics_path, obs::to_json(registry))) {
      std::fprintf(stderr, "[bench] metrics written to %s\n", metrics_path);
    } else {
      std::fprintf(stderr, "[bench] failed to write metrics to %s\n",
                   metrics_path);
    }
  }
  return entries;
}

void print_figure(
    const std::string& title, const std::string& unit,
    std::span<const MatrixEntry> entries,
    const std::function<double(const ExperimentResult&)>& select) {
  std::vector<FigureRow> rows;
  for (const MatrixEntry& e : entries) {
    rows.push_back({app_kind_name(e.app), mapping_kind_name(e.kind),
                    select(e.result)});
  }
  std::fputs(format_figure(title, unit, rows).c_str(), stdout);
}

}  // namespace massf::bench
