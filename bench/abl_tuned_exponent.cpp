// Ablation: the manual latency->weight tuning behind TOP2/PROF2 (paper
// Section 4.3: "we adjusted the link latency to edge weight converting
// algorithm... It is not a general solution"). Sweeps the tuning exponent
// and prints the resulting achieved MLL and predicted efficiency — showing
// both why the tuning was needed (exponent 1.0 = untuned TOP yields a tiny
// MLL) and why it is brittle (no single exponent dominates), which is the
// motivation for HPROF.
#include <cstdio>

#include "common.hpp"
#include "lb/mapping.hpp"

int main() {
  using namespace massf;
  using namespace massf::bench;

  ScenarioOptions sopts =
      experiment_options(/*multi_as=*/false, AppKind::kNone);
  Scenario scenario(sopts);

  std::printf("# Ablation: TOP2 edge-weight tuning exponent sweep"
              " (%d routers, %d engines)\n",
              sopts.num_routers, sopts.num_engines);
  std::printf("# exponent\tachieved_mll_ms\tbalance\tpredicted_E\n");
  for (const double exp : {1.0, 1.2, 1.4, 1.6, 2.0, 2.5, 3.0}) {
    ScenarioOptions o = sopts;  // fresh options; same seed/topology
    Scenario s2(o);
    Mapping m = [&] {
      MappingOptions mo;
      mo.kind = exp == 1.0 ? MappingKind::kTop : MappingKind::kTop2;
      mo.num_engines = o.num_engines;
      mo.cluster.num_engine_nodes = o.num_engines;
      mo.tuned_exponent = exp;
      return compute_mapping(s2.network(), mo, nullptr);
    }();
    std::printf("%.1f\t%.3f\t%.3f\t%.4f\n", exp,
                to_milliseconds(m.achieved_mll), m.balance,
                m.predicted_efficiency);
  }
  return 0;
}
