// Reproduces paper Figure 7: achieved MLL on the single-AS network,
// including the untuned TOP and PROF. Expected shape: TOP/PROF achieve tiny
// MLLs (the motivation for the hierarchical scheme), TOP2/PROF2 moderate,
// HTOP/HPROF the largest.
#include "common.hpp"

int main() {
  using namespace massf;
  using namespace massf::bench;
  const auto entries = run_matrix(/*multi_as=*/false, kApps, kAllKinds);
  print_figure("Figure 7: Achieved MLL on Single-AS", "ms", entries,
               [](const ExperimentResult& r) {
                 return to_milliseconds(r.mapping.achieved_mll);
               });
  return 0;
}
