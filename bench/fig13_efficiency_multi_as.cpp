// Reproduces paper Figure 13: parallel efficiency on the multi-AS network.
// Expected shape: HPROF ~40% for ScaLapack, ~64% above TOP2.
#include "common.hpp"

int main() {
  using namespace massf;
  using namespace massf::bench;
  const auto entries = run_matrix(/*multi_as=*/true, kApps, kMainKinds);
  print_figure("Figure 13: Parallel Efficiency on Multi-AS", "fraction",
               entries, [](const ExperimentResult& r) {
                 return r.metrics.parallel_efficiency;
               });
  return 0;
}
