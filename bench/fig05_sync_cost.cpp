// Reproduces paper Figure 5: synchronization cost of the (TeraGrid)
// cluster versus engine-node count. Prints two series:
//   model    — the calibrated C(N) every experiment in this repository
//              charges per window (C(100) ~= 0.58 ms, per the paper);
//   measured — a real std::barrier round on this machine's threads, the
//              in-process analog of the cluster's MPI barrier (bounded by
//              the available hardware parallelism, so it flattens out on
//              small hosts; printed for reference, not used by the model).
#include <barrier>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "cluster/cost_model.hpp"

namespace {

double measure_barrier_round_us(int threads, int rounds) {
  std::barrier sync(threads);
  std::vector<std::jthread> workers;
  const auto start = std::chrono::steady_clock::now();
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      for (int r = 0; r < rounds; ++r) sync.arrive_and_wait();
    });
  }
  workers.clear();
  const double total =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return total / rounds * 1e6;
}

}  // namespace

int main() {
  massf::ClusterModel cluster;
  std::printf("# Figure 5: Synchronization Cost vs Engine-Node Count\n");
  std::printf("# nodes\tmodel_us\n");
  for (const int n : {6, 16, 32, 48, 64, 80, 96, 100, 112, 128}) {
    std::printf("%d\t%.1f\n", n, cluster.sync_cost_s(n) * 1e6);
  }

  std::printf("# threads\tmeasured_barrier_us (this host)\n");
  const unsigned hw = std::thread::hardware_concurrency();
  for (int t = 2; t <= 8; t *= 2) {
    if (static_cast<unsigned>(t) > std::max(2u, hw * 4)) break;
    std::printf("%d\t%.1f\n", t, measure_barrier_round_us(t, 2000));
  }
  return 0;
}
