// Chaos harness: BGP Beacon with injected faults, end to end.
//
// Builds a multi-AS network with dynamic BGP speakers and a background
// HTTP workload, runs a RIPE-style beacon (withdraw / re-announce) while a
// scripted fault scenario — link flap train, loss burst, router crash and
// restore, BGP session reset — plays out through the FaultInjector, and
// verifies the tentpole determinism property: the sequential and threaded
// executors produce bit-identical RunStats and bit-identical
// massf.metrics.v1 JSON (which includes the massf.fault.v1 block) for the
// same seed. Exits non-zero on any mismatch.
//
// Also reports what the fault metrics are for: per-event OSPF and BGP
// reconvergence times.
//
//   chaos_beacon [--smoke]   # --smoke: reduced scale for the test tier

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "fault/injector.hpp"
#include "net/netsim.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "routing/forwarding.hpp"
#include "topology/mabrite.hpp"
#include "traffic/http.hpp"
#include "traffic/manager.hpp"

namespace massf {
namespace {

struct Scale {
  std::int32_t num_as = 12;
  std::int32_t routers_per_as = 6;
  std::int32_t num_hosts = 100;
  std::int32_t lps = 4;
  std::int32_t threads = 4;
  SimTime end = seconds(60);
};

struct RunResult {
  RunStats stats;
  std::string metrics_json;
  std::vector<double> ospf_reconverge_s;
  std::vector<FaultInjector::BgpReconvergence> bgp_reconverge;
};

/// First intra-AS router-router link of `as` (for the flap/loss targets).
LinkId intra_as_link(const Network& net, AsId as, LinkId not_this = -1) {
  for (LinkId l = 0; l < static_cast<LinkId>(net.links.size()); ++l) {
    const NetLink& link = net.links[static_cast<std::size_t>(l)];
    if (l != not_this && !link.inter_as && net.is_router(link.a) &&
        net.is_router(link.b) &&
        net.nodes[static_cast<std::size_t>(link.a)].as_id == as) {
      return l;
    }
  }
  std::fprintf(stderr, "no intra-AS router link in AS %d\n", as);
  std::exit(1);
}

RunResult run_once(const Scale& scale, bool threaded) {
  MaBriteOptions mo;
  mo.num_as = scale.num_as;
  mo.routers_per_as = scale.routers_per_as;
  mo.num_hosts = scale.num_hosts;
  mo.seed = 5;
  Network net = generate_multi_as(mo);
  const auto num_plain_hosts = static_cast<NodeId>(net.nodes.size()) -
                               net.num_routers;
  const std::vector<NodeId> speaker_hosts = add_bgp_speaker_hosts(net);

  std::vector<NodeId> dests;
  for (NodeId h = net.num_routers;
       h < static_cast<NodeId>(net.nodes.size()); ++h) {
    dests.push_back(net.nodes[static_cast<std::size_t>(h)].attach_router);
  }
  ForwardingPlane fp = ForwardingPlane::build_multi_as(net, dests);

  // Partition by AS blocks; lookahead = min cross-LP link latency.
  std::vector<LpId> map(static_cast<std::size_t>(net.num_routers), 0);
  for (NodeId r = 0; r < net.num_routers; ++r) {
    map[static_cast<std::size_t>(r)] =
        net.nodes[static_cast<std::size_t>(r)].as_id % scale.lps;
  }
  SimTime lookahead = kSimTimeMax;
  for (const NetLink& l : net.links) {
    if (net.is_router(l.a) && net.is_router(l.b) &&
        map[static_cast<std::size_t>(l.a)] !=
            map[static_cast<std::size_t>(l.b)]) {
      lookahead = std::min(lookahead, l.latency);
    }
  }

  EngineOptions eo;
  eo.lookahead = lookahead;
  eo.end_time = scale.end;
  Engine engine(eo);
  NetSim sim(net, fp, map, engine, NetSimOptions{});
  TrafficManager manager(sim);

  auto speakers_owned = std::make_unique<BgpSpeakers>(net, speaker_hosts,
                                                      BgpDynamicOptions{});
  BgpSpeakers* speakers = speakers_owned.get();
  manager.add(TrafficKind::kBgp, std::move(speakers_owned));

  // Background HTTP over the plain hosts (the speakers stay BGP-only).
  std::vector<NodeId> clients, servers;
  for (NodeId i = 0; i < num_plain_hosts; ++i) {
    const NodeId h = net.num_routers + i;
    (i % 4 == 0 ? servers : clients).push_back(h);
  }
  HttpOptions ho;
  ho.think_time_mean_s = 0.5;
  manager.add(TrafficKind::kHttp,
              std::make_unique<HttpWorkload>(clients, servers, ho));

  // The beacon: withdraw at 10 s, re-announce at 20 s.
  const AsId beacon_as = net.num_as() - 1;
  speakers->schedule_beacon(engine, sim, beacon_as, seconds(10), seconds(10),
                            /*toggles=*/2);

  // The chaos scenario, exercised through the text format. Targets are
  // picked from the generated topology: a flapping intra-AS link and a
  // lossy one in AS 0, a crashed router in AS 1, and a session reset on
  // the first AS adjacency.
  const LinkId flap_link = intra_as_link(net, 0);
  const LinkId loss_link = intra_as_link(net, 0, flap_link);
  const NodeId crash_router =
      net.as_info[1].first_router + (net.as_info[1].num_routers > 1 ? 1 : 0);
  const AsAdjacency& adj = net.as_adjacency.front();
  char scenario[512];
  std::snprintf(scenario, sizeof scenario,
                "# chaos_beacon scripted scenario\n"
                "at 12 flap link=%d count=3 period=2 downtime=0.5\n"
                "at 13 loss link=%d duration=2 rate=0.05\n"
                "at 15 crash router=%d\n"
                "at 20 restore router=%d\n"
                "at 18 bgp_reset as=%d peer=%d downtime=2\n",
                flap_link, loss_link, crash_router, crash_router, adj.as_a,
                adj.as_b);
  std::string parse_error;
  const auto schedule = parse_fault_schedule(scenario, &parse_error);
  if (!schedule) {
    std::fprintf(stderr, "scenario parse error: %s\n", parse_error.c_str());
    std::exit(1);
  }

  FaultInjector injector(net, fp);
  injector.set_bgp(speakers);
  injector.arm(engine, sim, *schedule);

  manager.start(engine, sim);
  RunResult r;
  r.stats = threaded ? engine.run_threaded(scale.threads) : engine.run();

  obs::Registry registry;
  sim.publish_metrics(registry);
  manager.publish_metrics(registry);
  injector.publish_metrics(registry);
  r.metrics_json = obs::to_json(registry);
  r.ospf_reconverge_s = injector.ospf_reconvergence_s();
  r.bgp_reconverge = injector.bgp_reconvergence();
  return r;
}

bool same_stats(const RunStats& a, const RunStats& b) {
  return a.total_events == b.total_events && a.num_windows == b.num_windows &&
         a.events_per_lp == b.events_per_lp && a.end_vtime == b.end_vtime &&
         a.modeled_wall_s == b.modeled_wall_s &&
         a.modeled_sync_s == b.modeled_sync_s;
}

}  // namespace
}  // namespace massf

int main(int argc, char** argv) {
  using namespace massf;
  Scale scale;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      scale.num_as = 6;
      scale.routers_per_as = 4;
      scale.num_hosts = 24;
      scale.lps = 2;
      scale.threads = 2;
      scale.end = seconds(30);
    } else {
      std::fprintf(stderr, "usage: %s [--smoke]\n", argv[0]);
      return 2;
    }
  }

  std::fprintf(stderr, "[chaos_beacon] sequential run...\n");
  const RunResult seq = run_once(scale, /*threaded=*/false);
  std::fprintf(stderr, "[chaos_beacon] threaded run (%d threads)...\n",
               scale.threads);
  const RunResult thr = run_once(scale, /*threaded=*/true);

  std::printf("events=%llu windows=%llu end_vtime_s=%.3f\n",
              static_cast<unsigned long long>(seq.stats.total_events),
              static_cast<unsigned long long>(seq.stats.num_windows),
              to_seconds(seq.stats.end_vtime));
  std::printf("ospf reconvergence (s):");
  for (const double s : seq.ospf_reconverge_s) std::printf(" %.3f", s);
  std::printf("\nbgp reconvergence (s):");
  for (const auto& r : seq.bgp_reconverge) {
    std::printf(" [at=%.1f settle=%.3f]", to_seconds(r.at), r.settle_s);
  }
  std::printf("\n");

  if (!same_stats(seq.stats, thr.stats)) {
    std::fprintf(stderr, "FAIL: RunStats differ between executors\n");
    return 1;
  }
  if (seq.metrics_json != thr.metrics_json) {
    std::fprintf(stderr,
                 "FAIL: metrics JSON differs between executors\n--- seq\n"
                 "%s\n--- thr\n%s\n",
                 seq.metrics_json.c_str(), thr.metrics_json.c_str());
    return 1;
  }
  if (seq.ospf_reconverge_s.empty()) {
    std::fprintf(stderr, "FAIL: no OSPF reconvergence events recorded\n");
    return 1;
  }
  std::printf("OK: executors bit-identical (%zu metrics bytes)\n",
              seq.metrics_json.size());
  return 0;
}
