// Chaos harness: BGP Beacon with injected faults, end to end.
//
// Builds a multi-AS network with dynamic BGP speakers and a background
// HTTP workload, runs a RIPE-style beacon (withdraw / re-announce) while a
// scripted fault scenario — link flap train, loss burst, router crash and
// restore, BGP session reset — plays out through the FaultInjector, and
// verifies the tentpole determinism property: the sequential and threaded
// executors produce bit-identical RunStats and bit-identical
// massf.metrics.v1 JSON (which includes the massf.fault.v1 block) for the
// same seed. Exits non-zero on any mismatch.
//
// Also reports what the fault metrics are for: per-event OSPF and BGP
// reconvergence times.
//
// Supervised mode (--guard): the threaded leg runs under the liveness
// watchdog and the GuardedRun recovery ladder (DESIGN.md section 5h).
// With --inject-stall one LP's channel clock is frozen mid-run, the
// watchdog cancels the wedged attempt (writing the massf.guard.v1 dump),
// and the ladder's barrier fallback reruns clean — the recovered result
// must STILL be bit-identical to the sequential reference.
//
//   chaos_beacon [--smoke] [--guard] [--inject-stall]
//                [--guard-deadline S] [--guard-dump PATH]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "fault/injector.hpp"
#include "guard/guarded_run.hpp"
#include "guard/watchdog.hpp"
#include "net/netsim.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "routing/forwarding.hpp"
#include "topology/mabrite.hpp"
#include "traffic/http.hpp"
#include "traffic/manager.hpp"

namespace massf {
namespace {

struct Scale {
  std::int32_t num_as = 12;
  std::int32_t routers_per_as = 6;
  std::int32_t num_hosts = 100;
  std::int32_t lps = 4;
  std::int32_t threads = 4;
  SimTime end = seconds(60);
};

struct RunResult {
  RunStats stats;
  std::string metrics_json;
  std::vector<double> ospf_reconverge_s;
  std::vector<FaultInjector::BgpReconvergence> bgp_reconverge;
  bool cancelled = false;  ///< the watchdog cancelled this run (guard mode)
};

/// Supervision config for one guarded attempt (nullptr = plain run).
struct GuardConfig {
  SyncMode sync = SyncMode::kChannel;
  std::int32_t threads = 0;
  guard::GuardOptions options;
  bool inject_stall = false;
  obs::Registry* registry = nullptr;
};

/// First intra-AS router-router link of `as` (for the flap/loss targets).
LinkId intra_as_link(const Network& net, AsId as, LinkId not_this = -1) {
  for (LinkId l = 0; l < static_cast<LinkId>(net.links.size()); ++l) {
    const NetLink& link = net.links[static_cast<std::size_t>(l)];
    if (l != not_this && !link.inter_as && net.is_router(link.a) &&
        net.is_router(link.b) &&
        net.nodes[static_cast<std::size_t>(link.a)].as_id == as) {
      return l;
    }
  }
  std::fprintf(stderr, "no intra-AS router link in AS %d\n", as);
  std::exit(1);
}

RunResult run_once(const Scale& scale, bool threaded,
                   const GuardConfig* guarded = nullptr) {
  MaBriteOptions mo;
  mo.num_as = scale.num_as;
  mo.routers_per_as = scale.routers_per_as;
  mo.num_hosts = scale.num_hosts;
  mo.seed = 5;
  Network net = generate_multi_as(mo);
  const auto num_plain_hosts = static_cast<NodeId>(net.nodes.size()) -
                               net.num_routers;
  const std::vector<NodeId> speaker_hosts = add_bgp_speaker_hosts(net);

  std::vector<NodeId> dests;
  for (NodeId h = net.num_routers;
       h < static_cast<NodeId>(net.nodes.size()); ++h) {
    dests.push_back(net.nodes[static_cast<std::size_t>(h)].attach_router);
  }
  ForwardingPlane fp = ForwardingPlane::build_multi_as(net, dests);

  // Partition by AS blocks; lookahead = min cross-LP link latency.
  std::vector<LpId> map(static_cast<std::size_t>(net.num_routers), 0);
  for (NodeId r = 0; r < net.num_routers; ++r) {
    map[static_cast<std::size_t>(r)] =
        net.nodes[static_cast<std::size_t>(r)].as_id % scale.lps;
  }
  SimTime lookahead = kSimTimeMax;
  for (const NetLink& l : net.links) {
    if (net.is_router(l.a) && net.is_router(l.b) &&
        map[static_cast<std::size_t>(l.a)] !=
            map[static_cast<std::size_t>(l.b)]) {
      lookahead = std::min(lookahead, l.latency);
    }
  }

  EngineOptions eo;
  eo.lookahead = lookahead;
  eo.end_time = scale.end;
  if (guarded != nullptr) {
    eo.sync = guarded->sync;
    eo.guard = guarded->options;
  }
  Engine engine(eo);
  NetSim sim(net, fp, map, engine, NetSimOptions{});
  TrafficManager manager(sim);

  auto speakers_owned = std::make_unique<BgpSpeakers>(net, speaker_hosts,
                                                      BgpDynamicOptions{});
  BgpSpeakers* speakers = speakers_owned.get();
  manager.add(TrafficKind::kBgp, std::move(speakers_owned));

  // Background HTTP over the plain hosts (the speakers stay BGP-only).
  std::vector<NodeId> clients, servers;
  for (NodeId i = 0; i < num_plain_hosts; ++i) {
    const NodeId h = net.num_routers + i;
    (i % 4 == 0 ? servers : clients).push_back(h);
  }
  HttpOptions ho;
  ho.think_time_mean_s = 0.5;
  manager.add(TrafficKind::kHttp,
              std::make_unique<HttpWorkload>(clients, servers, ho));

  // The beacon: withdraw at 10 s, re-announce at 20 s.
  const AsId beacon_as = net.num_as() - 1;
  speakers->schedule_beacon(engine, sim, beacon_as, seconds(10), seconds(10),
                            /*toggles=*/2);

  // The chaos scenario, exercised through the text format. Targets are
  // picked from the generated topology: a flapping intra-AS link and a
  // lossy one in AS 0, a crashed router in AS 1, and a session reset on
  // the first AS adjacency.
  const LinkId flap_link = intra_as_link(net, 0);
  const LinkId loss_link = intra_as_link(net, 0, flap_link);
  const NodeId crash_router =
      net.as_info[1].first_router + (net.as_info[1].num_routers > 1 ? 1 : 0);
  const AsAdjacency& adj = net.as_adjacency.front();
  char scenario[512];
  std::snprintf(scenario, sizeof scenario,
                "# chaos_beacon scripted scenario\n"
                "at 12 flap link=%d count=3 period=2 downtime=0.5\n"
                "at 13 loss link=%d duration=2 rate=0.05\n"
                "at 15 crash router=%d\n"
                "at 20 restore router=%d\n"
                "at 18 bgp_reset as=%d peer=%d downtime=2\n",
                flap_link, loss_link, crash_router, crash_router, adj.as_a,
                adj.as_b);
  std::string parse_error;
  const auto schedule = parse_fault_schedule(scenario, &parse_error);
  if (!schedule) {
    std::fprintf(stderr, "scenario parse error: %s\n", parse_error.c_str());
    std::exit(1);
  }

  FaultInjector injector(net, fp);
  injector.set_bgp(speakers);
  injector.arm(engine, sim, *schedule);

  manager.start(engine, sim);
  RunResult r;
  if (guarded != nullptr) {
    // Stall injection only exists on the channel-clock protocol; the
    // barrier rungs of the recovery ladder run clean by construction.
    if (guarded->inject_stall && guarded->sync == SyncMode::kChannel) {
      engine.test_freeze_lp_clock(scale.lps - 1, /*after_windows=*/100);
    }
    guard::Watchdog watchdog(engine, guarded->options, guarded->registry);
    watchdog.arm();
    r.stats = guarded->threads > 0 ? engine.run_threaded(guarded->threads)
                                   : engine.run();
    watchdog.disarm();
    r.cancelled = engine.run_cancelled();
    if (r.cancelled) return r;  // partial state: skip the metrics publish
  } else {
    r.stats = threaded ? engine.run_threaded(scale.threads) : engine.run();
  }

  obs::Registry registry;
  sim.publish_metrics(registry);
  manager.publish_metrics(registry);
  injector.publish_metrics(registry);
  r.metrics_json = obs::to_json(registry);
  r.ospf_reconverge_s = injector.ospf_reconvergence_s();
  r.bgp_reconverge = injector.bgp_reconvergence();
  return r;
}

bool same_stats(const RunStats& a, const RunStats& b) {
  return a.total_events == b.total_events && a.num_windows == b.num_windows &&
         a.events_per_lp == b.events_per_lp && a.end_vtime == b.end_vtime &&
         a.modeled_wall_s == b.modeled_wall_s &&
         a.modeled_sync_s == b.modeled_sync_s;
}

}  // namespace
}  // namespace massf

int main(int argc, char** argv) {
  using namespace massf;
  Scale scale;
  bool guard_mode = false;
  bool inject_stall = false;
  double guard_deadline_s = 5.0;
  std::string guard_dump = "guard_stall.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      scale.num_as = 6;
      scale.routers_per_as = 4;
      scale.num_hosts = 24;
      scale.lps = 2;
      scale.threads = 2;
      scale.end = seconds(30);
    } else if (std::strcmp(argv[i], "--guard") == 0) {
      guard_mode = true;
    } else if (std::strcmp(argv[i], "--inject-stall") == 0) {
      inject_stall = true;
    } else if (std::strcmp(argv[i], "--guard-deadline") == 0 &&
               i + 1 < argc) {
      guard_deadline_s = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--guard-dump") == 0 && i + 1 < argc) {
      guard_dump = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--guard] [--inject-stall] "
                   "[--guard-deadline S] [--guard-dump PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  if (inject_stall && !guard_mode) {
    std::fprintf(stderr, "--inject-stall requires --guard\n");
    return 2;
  }

  std::fprintf(stderr, "[chaos_beacon] sequential run...\n");
  const RunResult seq = run_once(scale, /*threaded=*/false);

  RunResult thr;
  if (guard_mode) {
    // Threaded leg under supervision: watchdog + recovery ladder. Each
    // attempt rebuilds the whole stack from scratch, so a recovered run is
    // a deterministic replay — it must match the sequential reference just
    // like an unsupervised threaded run does.
    std::fprintf(stderr,
                 "[chaos_beacon] guarded threaded run (%d threads, "
                 "deadline=%.1fs%s)...\n",
                 scale.threads, guard_deadline_s,
                 inject_stall ? ", stall injected" : "");
    obs::Registry guard_registry;
    guard::GuardedRun::Options gopts;
    gopts.max_retries = 0;  // a frozen clock repeats; go straight to rung 1
    guard::GuardedRun runner(gopts, &guard_registry);
    bool have_result = false;
    const guard::GuardedRunReport report = runner.run(
        SyncMode::kChannel, scale.threads,
        [&](const guard::AttemptPlan& plan) -> guard::AttemptOutcome {
          GuardConfig gc;
          gc.sync = plan.sync;
          gc.threads = plan.threads;
          gc.options.enabled = true;
          gc.options.stall_deadline_s = guard_deadline_s;
          gc.options.dump_path = guard_dump;
          gc.options.on_stall = guard::OnStall::kCancel;
          gc.inject_stall = inject_stall;
          gc.registry = &guard_registry;
          const RunResult r = run_once(scale, plan.threads > 0, &gc);
          if (r.cancelled) {
            return {guard::AttemptStatus::kStalled,
                    "watchdog cancelled the run"};
          }
          thr = r;
          have_result = true;
          return {};
        });
    if (!report.completed || !have_result) {
      std::fprintf(stderr, "FAIL: guarded run never completed: %s\n",
                   report.last_error.c_str());
      return 1;
    }
    std::printf(
        "guard: completed after %d attempt(s) (stalls=%llu errors=%llu "
        "rung=%d stalls_detected=%llu dumps=%llu)\n",
        report.attempts, static_cast<unsigned long long>(report.stalls),
        static_cast<unsigned long long>(report.errors), report.degraded_rung,
        static_cast<unsigned long long>(
            guard_registry.counter("guard.stalls_detected").value()),
        static_cast<unsigned long long>(
            guard_registry.counter("guard.dump_writes").value()));
    if (inject_stall && report.stalls == 0) {
      std::fprintf(stderr,
                   "FAIL: --inject-stall but no attempt ever stalled\n");
      return 1;
    }
  } else {
    std::fprintf(stderr, "[chaos_beacon] threaded run (%d threads)...\n",
                 scale.threads);
    thr = run_once(scale, /*threaded=*/true);
  }

  std::printf("events=%llu windows=%llu end_vtime_s=%.3f\n",
              static_cast<unsigned long long>(seq.stats.total_events),
              static_cast<unsigned long long>(seq.stats.num_windows),
              to_seconds(seq.stats.end_vtime));
  std::printf("ospf reconvergence (s):");
  for (const double s : seq.ospf_reconverge_s) std::printf(" %.3f", s);
  std::printf("\nbgp reconvergence (s):");
  for (const auto& r : seq.bgp_reconverge) {
    std::printf(" [at=%.1f settle=%.3f]", to_seconds(r.at), r.settle_s);
  }
  std::printf("\n");

  if (!same_stats(seq.stats, thr.stats)) {
    std::fprintf(stderr, "FAIL: RunStats differ between executors\n");
    return 1;
  }
  if (seq.metrics_json != thr.metrics_json) {
    std::fprintf(stderr,
                 "FAIL: metrics JSON differs between executors\n--- seq\n"
                 "%s\n--- thr\n%s\n",
                 seq.metrics_json.c_str(), thr.metrics_json.c_str());
    return 1;
  }
  if (seq.ospf_reconverge_s.empty()) {
    std::fprintf(stderr, "FAIL: no OSPF reconvergence events recorded\n");
    return 1;
  }
  std::printf("OK: executors bit-identical (%zu metrics bytes)\n",
              seq.metrics_json.size());
  return 0;
}
