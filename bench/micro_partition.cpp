// Microbenchmarks for the multilevel partitioner. Context: the paper's
// Section 3.4.3 relies on the partitioner being fast enough to sweep many
// Tmll thresholds ("METIS can partition a graph with 10,000 vertexes in
// about 10 seconds"); these benches verify ours is in that class.
#include <benchmark/benchmark.h>

#include "graph/graph.hpp"
#include "partition/partition.hpp"
#include "util/rng.hpp"

namespace {

massf::Graph make_graph(massf::VertexId n, std::uint64_t seed) {
  massf::Rng rng(seed);
  massf::GraphBuilder b(n);
  for (massf::VertexId v = 0; v < n; ++v) {
    b.add_edge(v, (v + 1) % n, static_cast<massf::Weight>(1 + rng.uniform(100)));
    b.set_vertex_weight(v, static_cast<massf::Weight>(1 + rng.uniform(50)));
  }
  for (massf::VertexId v = 0; v < 2 * n; ++v) {
    const auto a = static_cast<massf::VertexId>(rng.uniform(n));
    const auto c = static_cast<massf::VertexId>(rng.uniform(n));
    if (a != c) b.add_edge(a, c, static_cast<massf::Weight>(1 + rng.uniform(100)));
  }
  return b.build();
}

void BM_PartitionKway(benchmark::State& state) {
  const auto n = static_cast<massf::VertexId>(state.range(0));
  const auto k = static_cast<std::int32_t>(state.range(1));
  const massf::Graph g = make_graph(n, 7);
  massf::PartitionOptions opts;
  opts.num_parts = k;
  for (auto _ : state) {
    auto r = massf::partition_graph(g, opts);
    benchmark::DoNotOptimize(r.edge_cut);
  }
  state.SetLabel("vertices=" + std::to_string(n) + " k=" + std::to_string(k));
}
BENCHMARK(BM_PartitionKway)
    ->Args({1000, 16})
    ->Args({10000, 16})
    ->Args({10000, 90})
    ->Args({20000, 90})
    ->Unit(benchmark::kMillisecond);

void BM_EdgeCut(benchmark::State& state) {
  const massf::Graph g = make_graph(10000, 7);
  massf::PartitionOptions opts;
  opts.num_parts = 16;
  const auto r = massf::partition_graph(g, opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(massf::compute_edge_cut(g, r.part));
  }
}
BENCHMARK(BM_EdgeCut);

}  // namespace

BENCHMARK_MAIN();
